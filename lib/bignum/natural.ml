(* Base-2^31 little-endian limbs, no leading zeros. Products of two limbs
   fit in OCaml's 63-bit native int, which keeps multiplication and Knuth
   division free of overflow checks. *)

type t = int array

let base_bits = 31
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let is_zero (a : t) = Array.length a = 0

(* Strip leading (high-index) zero limbs to restore canonical form. *)
let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Natural.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else
    normalize
      [|
        n land limb_mask;
        (n lsr base_bits) land limb_mask;
        n lsr (2 * base_bits);
      |]

let to_int_opt (a : t) =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl base_bits))
  | 3 when a.(2) <= 1 ->
      (* limb 2 contributes bit 62, the last usable bit of a 63-bit int *)
      let hi = a.(2) lsl (2 * base_bits) in
      if hi < 0 then None
      else Some (a.(0) lor (a.(1) lsl base_bits) lor hi)
  | _ -> None

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)

let add (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  let lr = max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s =
      (if i < la then Array.unsafe_get a i else 0)
      + (if i < lb then Array.unsafe_get b i else 0)
      + !carry
    in
    Array.unsafe_set r i (s land limb_mask);
    carry := s lsr base_bits
  done;
  normalize r

let sub (a : t) (b : t) : t =
  if compare a b < 0 then invalid_arg "Natural.sub: underflow";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d =
      Array.unsafe_get a i
      - (if i < lb then Array.unsafe_get b i else 0)
      - !borrow
    in
    if d < 0 then begin
      Array.unsafe_set r i (d + base);
      borrow := 1
    end
    else begin
      Array.unsafe_set r i d;
      borrow := 0
    end
  done;
  normalize r

let mul_int (a : t) (k : int) : t =
  if k < 0 then invalid_arg "Natural.mul_int: negative";
  if k = 0 || is_zero a then zero
  else if k < base then begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (Array.unsafe_get a i * k) + !carry in
      Array.unsafe_set r i (p land limb_mask);
      carry := p lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end
  else invalid_arg "Natural.mul_int: factor too large"

let mul_school (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = Array.unsafe_get a i in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let p =
            (ai * Array.unsafe_get b j) + Array.unsafe_get r (i + j) + !carry
          in
          Array.unsafe_set r (i + j) (p land limb_mask);
          carry := p lsr base_bits
        done;
        (* The final carry fits in one limb: ai*b(j) <= (B-1)^2 and the
           running sum stays below B^2. *)
        Array.unsafe_set r (i + lb) (Array.unsafe_get r (i + lb) + !carry)
      end
    done;
    normalize r
  end

(* Below this limb count Karatsuba's split/recombine allocations cost
   more than the ~25% of limb products they save; 1000-bit operands (34
   limbs) land in schoolbook, which profiles ~2x faster there. *)
let karatsuba_threshold = 72

let split_at (a : t) (k : int) : t * t =
  let la = Array.length a in
  if la <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (la - k))

let shift_limbs (a : t) (k : int) : t =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : t) (b : t) : t =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if la = 1 then mul_int b a.(0)
  else if lb = 1 then mul_int a b.(0)
  else if min la lb < karatsuba_threshold then mul_school a b
  else begin
    (* Karatsuba: split both operands at half the larger length. *)
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end


let bit_length_raw (a : int array) (la : int) =
  if la = 0 then 0
  else begin
    let top = a.(la - 1) in
    let bits = ref 0 in
    let v = ref top in
    while !v > 0 do
      incr bits;
      v := !v lsr 1
    done;
    ((la - 1) * base_bits) + !bits
  end

let bit_length (a : t) = bit_length_raw a (Array.length a)

let testbit (a : t) (i : int) =
  let limb = i / base_bits and off = i mod base_bits in
  limb < Array.length a && (a.(limb) lsr off) land 1 = 1

(* Is any bit strictly below position [i] set? Scans from the bottom, so
   for odd values (canonical Bigfloat mantissas) it answers in O(1). *)
let any_bit_below (a : t) (i : int) =
  if i <= 0 || is_zero a then false
  else begin
    let limb = i / base_bits and off = i mod base_bits in
    let la = Array.length a in
    let full = min limb la in
    let rec scan k = k < full && (a.(k) <> 0 || scan (k + 1)) in
    scan 0
    || (off > 0 && limb < la && a.(limb) land ((1 lsl off) - 1) <> 0)
  end

(* Are all bits in [lo, hi) set? (false for an empty range) *)
let all_ones_between (a : t) (lo : int) (hi : int) =
  lo < hi
  &&
  let rec go i = i >= hi || (testbit a i && go (i + 1)) in
  go lo

let is_even (a : t) = is_zero a || a.(0) land 1 = 0

let shift_left (a : t) (n : int) : t =
  if n < 0 then invalid_arg "Natural.shift_left: negative";
  if n = 0 || is_zero a then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (Array.unsafe_get a i lsl bits) lor !carry in
        Array.unsafe_set r (i + limbs) (v land limb_mask);
        carry := v lsr base_bits
      done;
      r.(la + limbs) <- !carry
    end;
    normalize r
  end

let shift_right (a : t) (n : int) : t =
  if n < 0 then invalid_arg "Natural.shift_right: negative";
  if n = 0 || is_zero a then a
  else begin
    let limbs = n / base_bits and bits = n mod base_bits in
    let la = Array.length a in
    if limbs >= la then zero
    else begin
      let lr = la - limbs in
      let r = Array.make lr 0 in
      if bits = 0 then Array.blit a limbs r 0 lr
      else
        for i = 0 to lr - 1 do
          let lo = Array.unsafe_get a (i + limbs) lsr bits in
          let hi =
            if i + limbs + 1 < la then
              (Array.unsafe_get a (i + limbs + 1) lsl (base_bits - bits))
              land limb_mask
            else 0
          in
          Array.unsafe_set r i (lo lor hi)
        done;
      normalize r
    end
  end

(* Bigfloat addition aligns operands by shifting the higher-exponent one
   left before a full-width add or sub.  Fusing the shift into the
   add/sub writes the shifted operand straight into the result buffer —
   one allocation and one pass instead of three — which matters in series
   evaluation where the alignment gap grows with every term. *)
let write_shifted (a : t) (limbs : int) (bits : int) (r : int array) =
  let la = Array.length a in
  if bits = 0 then Array.blit a 0 r limbs la
  else begin
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let v = (Array.unsafe_get a i lsl bits) lor !carry in
      Array.unsafe_set r (i + limbs) (v land limb_mask);
      carry := v lsr base_bits
    done;
    r.(la + limbs) <- !carry
  end

(* [add_shifted a s b] = a*2^s + b. *)
let add_shifted (a : t) (s : int) (b : t) : t =
  if s < 0 then invalid_arg "Natural.add_shifted: negative shift";
  if s = 0 then add a b
  else if is_zero a then b
  else if is_zero b then shift_left a s
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let la = Array.length a and lb = Array.length b in
    let lr = 1 + max (la + limbs + 1) lb in
    let r = Array.make lr 0 in
    write_shifted a limbs bits r;
    let carry = ref 0 and i = ref 0 in
    while !i < lb || !carry <> 0 do
      let v =
        Array.unsafe_get r !i
        + (if !i < lb then Array.unsafe_get b !i else 0)
        + !carry
      in
      Array.unsafe_set r !i (v land limb_mask);
      carry := v lsr base_bits;
      incr i
    done;
    normalize r
  end

(* [sub_shifted a s b] = a*2^s - b; requires a*2^s >= b. *)
let sub_shifted (a : t) (s : int) (b : t) : t =
  if s < 0 then invalid_arg "Natural.sub_shifted: negative shift";
  if s = 0 then sub a b
  else if is_zero b then shift_left a s
  else begin
    let limbs = s / base_bits and bits = s mod base_bits in
    let la = Array.length a and lb = Array.length b in
    let lr = la + limbs + 1 in
    if is_zero a || lb > lr then
      invalid_arg "Natural.sub_shifted: negative result";
    let r = Array.make lr 0 in
    write_shifted a limbs bits r;
    let borrow = ref 0 and i = ref 0 in
    while (!i < lb || !borrow <> 0) && !i < lr do
      let v =
        Array.unsafe_get r !i
        - (if !i < lb then Array.unsafe_get b !i else 0)
        - !borrow
      in
      if v < 0 then begin
        Array.unsafe_set r !i (v + base);
        borrow := 1
      end
      else begin
        Array.unsafe_set r !i v;
        borrow := 0
      end;
      incr i
    done;
    if !borrow <> 0 then invalid_arg "Natural.sub_shifted: negative result";
    normalize r
  end

(* Short-product multiply-and-round for odd operands.

   [mul_round ~prec a b] rounds a*b to [prec] significant bits (round to
   nearest) and returns [Some (mant, shift)] with
   round(a*b) = mant * 2^shift, or [None] when the caller must fall back
   to the exact product.

   Soundness argument. Both operands are odd (canonical Bigfloat
   mantissas), so the product P is odd: the bits discarded by rounding
   always contain a set bit below the round bit, the tie case is
   impossible, and round-to-nearest reduces to "add the round bit".
   The short product keeps only the partial products a_i*b_j with
   i+j >= off and computes S with P = S*B^off + E where
   0 <= E < off*B^(off+1), i.e. E < 2^44*B^off for off <= 8192. Adding E
   to S*B^off can change bits at positions >= off*31+45 only through a
   carry chain of consecutive set bits, so if some bit of S in the
   window [45, round-bit) is clear, the round bit and everything above
   it are exact. The all-ones window (probability ~2^-window per call)
   falls back to the exact product. *)
let mul_round ~prec (a : t) (b : t) : (t * int) option =
  let la = Array.length a and lb = Array.length b in
  if la < 6 || lb < 6 || prec <= 0 then None
  else if a.(0) land 1 = 0 || b.(0) land 1 = 0 then None
  else begin
    let bl_min = bit_length a + bit_length b - 1 in
    let drop_min = bl_min - prec in
    (* the round bit must sit comfortably above the uncertain window *)
    let off = (drop_min - 1 - 96) / base_bits in
    if off < 2 || off > 8192 then None
    else begin
      let lr = la + lb - off in
      let r = Array.make lr 0 in
      (* Column-major (Comba) accumulation over exactly the pairs with
         [i + j >= off] — the same partial products as a row walk, so
         the truncated sum is bit-identical, but the carry chain runs
         once per column instead of once per product. A column of up to
         [la] products can overflow 63 bits, so each product is split
         into its low and high limb halves and the two are summed
         separately (each bounded by [la * 2^31], comfortably in
         range). *)
      let carry = ref 0 and hi_prev = ref 0 in
      for c = off to la + lb - 2 do
        let i0 = if c - lb + 1 > 0 then c - lb + 1 else 0 in
        let i1 = if c < la - 1 then c else la - 1 in
        (* two independent accumulator pairs halve the add-latency chain;
           products pipeline through the multiplier either way *)
        let lo = ref 0 and hi = ref 0 in
        let lo' = ref 0 and hi' = ref 0 in
        let i = ref i0 in
        while !i + 1 <= i1 do
          let p = Array.unsafe_get a !i * Array.unsafe_get b (c - !i) in
          let q =
            Array.unsafe_get a (!i + 1) * Array.unsafe_get b (c - !i - 1)
          in
          lo := !lo + (p land limb_mask);
          hi := !hi + (p lsr base_bits);
          lo' := !lo' + (q land limb_mask);
          hi' := !hi' + (q lsr base_bits);
          i := !i + 2
        done;
        if !i = i1 then begin
          let p = Array.unsafe_get a !i * Array.unsafe_get b (c - !i) in
          lo := !lo + (p land limb_mask);
          hi := !hi + (p lsr base_bits)
        end;
        let s = !carry + !hi_prev + !lo + !lo' in
        Array.unsafe_set r (c - off) (s land limb_mask);
        carry := s lsr base_bits;
        hi_prev := !hi + !hi'
      done;
      Array.unsafe_set r (lr - 1) (!carry + !hi_prev);
      let s = normalize r in
      let bl_s = bit_length s in
      (* round-bit position within S *)
      let rb_pos = bl_s - prec - 1 in
      if rb_pos < 64 then None
      else if all_ones_between s 45 rb_pos then None
      else begin
        let rb = testbit s rb_pos in
        let keep = shift_right s (rb_pos + 1) in
        let mant = if rb then add keep one else keep in
        Some (mant, bl_s + (off * base_bits) - prec)
      end
    end
  end

let trailing_zeros (a : t) =
  if is_zero a then invalid_arg "Natural.trailing_zeros: zero";
  let i = ref 0 in
  while a.(!i) = 0 do
    incr i
  done;
  let v = ref a.(!i) and b = ref 0 in
  while !v land 1 = 0 do
    incr b;
    v := !v lsr 1
  done;
  (!i * base_bits) + !b

let divmod_int (a : t) (k : int) : t * int =
  if k <= 0 then invalid_arg "Natural.divmod_int: non-positive divisor";
  if k >= base then invalid_arg "Natural.divmod_int: divisor too large";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  (* One float reciprocal-multiply per limb instead of two hardware
     integer divides (or one float divide, whose ~15-cycle latency sits
     on the loop's serial rem chain). cur < k*2^31, so the true quotient
     fits 31 bits; the estimate's relative error — three roundings at
     ~2^-53 each — is under 2^-50, hence off by at most 1 after
     truncation, and a single fixup in each direction restores
     exactness. *)
  let ik = 1.0 /. float_of_int k in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor Array.unsafe_get a i in
    let qi = int_of_float (float_of_int cur *. ik) in
    let r = cur - (qi * k) in
    let qi = if r < 0 then qi - 1 else if r >= k then qi + 1 else qi in
    let r = if r < 0 then r + k else if r >= k then r - k else r in
    Array.unsafe_set q i qi;
    rem := r
  done;
  (normalize q, !rem)

(* [divmod_int (shift_left a s) k], fused: the shifted limbs are
   produced on the fly inside the division pass, so the scaled dividend
   is never materialized. [Bigfloat.div_int] divides a full-precision
   mantissa by a machine integer once per series term, where the
   general path's temporaries dominate the profile. *)
let divshift_int (a : t) (s : int) (k : int) : t * int =
  if s < 0 then invalid_arg "Natural.divshift_int: negative shift";
  if k <= 0 then invalid_arg "Natural.divshift_int: non-positive divisor";
  if k >= base then invalid_arg "Natural.divshift_int: divisor too large";
  let n = Array.length a in
  if n = 0 then (zero, 0)
  else begin
    let sw = s / base_bits and sb = s mod base_bits in
    (* one limb of headroom for the sub-limb shift's spill *)
    let nt = n + sw + if sb = 0 then 0 else 1 in
    let q = Array.make nt 0 in
    let ik = 1.0 /. float_of_int k in
    let rem = ref 0 in
    for i = nt - 1 downto 0 do
      let j = i - sw in
      let limb =
        if sb = 0 then (if j >= 0 && j < n then Array.unsafe_get a j else 0)
        else begin
          let hi = if j >= 0 && j < n then Array.unsafe_get a j lsl sb else 0
          and lo =
            if j >= 1 then Array.unsafe_get a (j - 1) lsr (base_bits - sb)
            else 0
          in
          (hi lor lo) land limb_mask
        end
      in
      (* same reciprocal-multiply quotient step as [divmod_int] *)
      let cur = (!rem lsl base_bits) lor limb in
      let qi = int_of_float (float_of_int cur *. ik) in
      let r = cur - (qi * k) in
      let qi = if r < 0 then qi - 1 else if r >= k then qi + 1 else qi in
      let r = if r < 0 then r + k else if r >= k then r - k else r in
      Array.unsafe_set q i qi;
      rem := r
    done;
    (normalize q, !rem)
  end

(* Knuth algorithm D (TAOCP vol. 2, 4.3.1). Divisor normalized so its top
   limb has the high bit set, which bounds the qhat correction loop. *)
let divmod_knuth (a : t) (b : t) : t * t =
  let n = Array.length b in
  let shift = base_bits - (bit_length b - ((n - 1) * base_bits)) in
  let u0 = shift_left a shift and v = shift_left b shift in
  assert (Array.length v = n);
  let m = Array.length u0 - n in
  if m < 0 then (zero, a)
  else begin
    (* u gets one extra high limb for the running remainder window *)
    let u = Array.make (Array.length u0 + 1) 0 in
    Array.blit u0 0 u 0 (Array.length u0);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - ((base - 1) * vtop)
      end;
      (* n >= 2 always holds here: single-limb divisors use divmod_int. *)
      while
        !rhat < base && !qhat * vsec > (!rhat lsl base_bits) lor u.(j + n - 2)
      do
        decr qhat;
        rhat := !rhat + vtop
      done;
      (* multiply-subtract u[j..j+n] -= qhat * v *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * Array.unsafe_get v i) + !carry in
        carry := p lsr base_bits;
        let d = Array.unsafe_get u (i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          Array.unsafe_set u (i + j) (d + base);
          borrow := 1
        end
        else begin
          Array.unsafe_set u (i + j) d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back one copy of v *)
        u.(j + n) <- d + base;
        decr qhat;
        let c = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !c in
          u.(i + j) <- s land limb_mask;
          c := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !c) land limb_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub u 0 n) in
    (normalize q, shift_right r shift)
  end

let divmod (a : t) (b : t) : t * t =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let isqrt (a : t) : t =
  if is_zero a then zero
  else begin
    let bl = bit_length a in
    (* Initial overestimate: 2^ceil(bl/2); Newton from above converges
       monotonically to floor(sqrt). *)
    let x = ref (shift_left one ((bl + 1) / 2)) in
    let continue = ref true in
    while !continue do
      let q, _ = divmod a !x in
      let next = shift_right (add !x q) 1 in
      if compare next !x < 0 then x := next else continue := false
    done;
    !x
  end

let pow_int (b : t) (e : int) : t =
  if e < 0 then invalid_arg "Natural.pow_int: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (e lsr 1)
    end
  in
  go one b e

let of_string (s : string) : t =
  if s = "" then invalid_arg "Natural.of_string: empty";
  let acc = ref zero in
  String.iter
    (fun c ->
      if c < '0' || c > '9' then invalid_arg "Natural.of_string: bad digit";
      acc := add (mul_int !acc 10) (of_int (Char.code c - Char.code '0')))
    s;
  !acc

let to_string (a : t) =
  if is_zero a then "0"
  else begin
    let chunks = ref [] in
    let cur = ref a in
    while not (is_zero !cur) do
      let q, r = divmod_int !cur 1_000_000_000 in
      chunks := r :: !chunks;
      cur := q
    done;
    match !chunks with
    | [] -> "0"
    | first :: rest ->
        let buf = Buffer.create 32 in
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest;
        Buffer.contents buf
  end

let to_float (a : t) =
  let bl = bit_length a in
  if bl = 0 then 0.0
  else if bl <= 53 then begin
    match to_int_opt a with
    | Some i -> float_of_int i
    | None -> assert false
  end
  else begin
    (* Keep 54 bits plus a sticky bit, then round to nearest even. *)
    let sh = bl - 54 in
    let top = shift_right a sh in
    let sticky = compare (shift_left top sh) a <> 0 in
    let i =
      match to_int_opt top with Some i -> i | None -> assert false
    in
    let round_bit = i land 1 = 1 in
    let keep = i lsr 1 in
    let rounded =
      if round_bit && (sticky || keep land 1 = 1) then keep + 1 else keep
    in
    ldexp (float_of_int rounded) (sh + 1)
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)
