(** Arbitrary-precision binary floating point with round-to-nearest-even.

    This is the reproduction's substitute for MPFR: shadow values in the
    Herbgrind analysis are [Bigfloat.t] computed at a configurable precision
    (1000 bits by default, as in the paper). A finite value is
    [(-1)^neg * mant * 2^exp] with an odd mantissa, so every representable
    number has a unique form and precision is enforced by the rounding step
    of each operation rather than by the representation.

    Basic operations ([add], [sub], [mul], [div], [sqrt]) are correctly
    rounded to the requested precision. Transcendental functions live in
    {!Bigfloat_math} and are faithful to within a couple of ulps at the
    requested precision (see DESIGN.md on the table-maker's dilemma). *)

type t =
  | Nan
  | Inf of bool  (** [Inf true] is negative infinity *)
  | Zero of bool  (** [Zero true] is negative zero *)
  | Fin of fin

and fin = private { neg : bool; mant : Natural.t; exp : int }

val nan : t
val pos_inf : t
val neg_inf : t
val zero : t
val neg_zero : t
val one : t
val minus_one : t
val two : t
val half : t

val make : neg:bool -> mant:Natural.t -> exp:int -> t
(** Build a finite value, canonicalizing (strips trailing zero bits; a zero
    mantissa yields [Zero neg]). Not rounded. *)

val is_nan : t -> bool
val is_inf : t -> bool
val is_zero : t -> bool
val is_finite : t -> bool
val is_negative : t -> bool
(** Sign bit, true for [Zero true] and [Inf true]; false for NaN. *)

val precision_of : t -> int
(** Number of significant bits of a finite value; 0 for zero; raises
    [Invalid_argument] otherwise. *)

val round : prec:int -> t -> t
(** Round to nearest even at [prec] significant bits. *)

val neg : t -> t
val abs : t -> t
val add : prec:int -> t -> t -> t
val sub : prec:int -> t -> t -> t
val mul : prec:int -> t -> t -> t
val div : prec:int -> t -> t -> t

val div_int : prec:int -> t -> int -> t
(** [div_int ~prec x k] is [div ~prec x (of_int k)] bit for bit, via a
    fused single-pass divide — the form series evaluation hits once per
    term. *)

val sqrt : prec:int -> t -> t

val mul_2exp : t -> int -> t
(** Exact scaling by a power of two. *)

val cmp : t -> t -> int option
(** Numeric comparison; [None] when either argument is NaN. Negative and
    positive zero compare equal. *)

val equal : t -> t -> bool
(** Numeric equality ([false] when either side is NaN). *)

val hash : t -> int
(** Structural hash consistent with numeric equality on canonical values
    (the two zeros hash alike). *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val min2 : t -> t -> t
val max2 : t -> t -> t

val of_float : float -> t
(** Exact conversion from an IEEE double. *)

val to_float : t -> float
(** Round to the nearest IEEE double (overflow to infinity, gradual
    underflow to subnormals and zero). *)

val of_int : int -> t
val of_bigint : Bigint.t -> t

val to_bigint : t -> Bigint.t option
(** Exact conversion when the value is a finite integer. *)

val floor : t -> t
val ceil : t -> t
val trunc : t -> t
val round_to_int : t -> t
(** Round to the nearest integer, ties away from zero (C [round]). *)

val is_integer : t -> bool

val of_decimal_string : prec:int -> string -> t
(** Parse a decimal literal such as ["-12345.67e-8"], rounding to [prec]
    bits. Accepts ["inf"], ["-inf"] and ["nan"]. *)

val to_decimal_string : ?digits:int -> t -> string
(** Decimal rendering with [digits] significant digits (default 17). *)

val pp : Format.formatter -> t -> unit
