module N = Natural

type t = Nan | Inf of bool | Zero of bool | Fin of fin
and fin = { neg : bool; mant : N.t; exp : int }

let nan = Nan
let pos_inf = Inf false
let neg_inf = Inf true
let zero = Zero false
let neg_zero = Zero true

(* Canonical form: odd mantissa. *)
let make ~neg ~mant ~exp =
  if N.is_zero mant then Zero neg
  else begin
    let tz = N.trailing_zeros mant in
    if tz = 0 then Fin { neg; mant; exp }
    else Fin { neg; mant = N.shift_right mant tz; exp = exp + tz }
  end

let of_int n =
  if n = 0 then zero
  else begin
    let bi = Bigint.of_int n in
    make ~neg:(Bigint.is_negative bi) ~mant:(Bigint.magnitude bi) ~exp:0
  end

let of_bigint bi =
  make ~neg:(Bigint.is_negative bi) ~mant:(Bigint.magnitude bi) ~exp:0

let one = of_int 1
let minus_one = of_int (-1)
let two = of_int 2
let half = make ~neg:false ~mant:N.one ~exp:(-1)

let is_nan = function Nan -> true | Inf _ | Zero _ | Fin _ -> false
let is_inf = function Inf _ -> true | Nan | Zero _ | Fin _ -> false
let is_zero = function Zero _ -> true | Nan | Inf _ | Fin _ -> false

let is_finite = function
  | Zero _ | Fin _ -> true
  | Nan | Inf _ -> false

let is_negative = function
  | Nan -> false
  | Inf n | Zero n -> n
  | Fin f -> f.neg

let precision_of = function
  | Zero _ -> 0
  | Fin f -> N.bit_length f.mant
  | Nan | Inf _ -> invalid_arg "Bigfloat.precision_of: not finite"

(* Highest set bit position: value in [2^(mag-1), 2^mag). *)
let magnitude f = f.exp + N.bit_length f.mant

(* Round a raw (neg, mant, exp) triple to [prec] bits, to nearest with ties
   to even; [sticky] indicates discarded nonzero bits strictly below
   [mant]'s lsb. *)
let round_raw ~prec ~sticky neg mant exp =
  let bl = N.bit_length mant in
  if bl <= prec then
    (* Sticky bits below the lsb never move a nearest rounding. *)
    make ~neg ~mant ~exp
  else begin
    let drop = bl - prec in
    let keep = N.shift_right mant drop in
    (* The discarded part low compares against halfway = 2^(drop-1)
       through two bits: the round bit and whether anything is set below
       it — no need to materialize low itself. *)
    let rb = N.testbit mant (drop - 1) in
    let up =
      rb
      && (N.any_bit_below mant (drop - 1) || sticky || N.testbit keep 0)
    in
    let keep = if up then N.add keep N.one else keep in
    make ~neg ~mant:keep ~exp:(exp + drop)
  end

let round ~prec t =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f -> round_raw ~prec ~sticky:false f.neg f.mant f.exp

let neg = function
  | Nan -> Nan
  | Inf n -> Inf (not n)
  | Zero n -> Zero (not n)
  | Fin f -> Fin { f with neg = not f.neg }

let abs = function
  | Nan -> Nan
  | Inf _ -> Inf false
  | Zero _ -> Zero false
  | Fin f -> Fin { f with neg = false }

let mul_2exp t k =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f -> Fin { f with exp = f.exp + k }

(* Compare magnitudes of two finite nonzero values. *)
let compare_mag a b =
  let ma = magnitude a and mb = magnitude b in
  if ma <> mb then Stdlib.compare ma mb
  else begin
    let d = a.exp - b.exp in
    if d >= 0 then N.compare (N.shift_left a.mant d) b.mant
    else N.compare a.mant (N.shift_left b.mant (-d))
  end

(* Precision used for operations that must be exact (integer-valued
   rounding helpers); big enough never to round, small enough that derived
   arithmetic such as [max_align_bits] cannot overflow. *)
let exact = max_int / 16

(* Exact-addition window: operand gap beyond which the smaller operand is
   collapsed to a sticky nudge (faithful rounding; see DESIGN.md). *)
let max_align_bits prec = (2 * min prec exact) + 4096

(* Fused align-and-round: when [hi.exp - lo.exp = g >= 1], the exact sum
   [hi.mant * 2^g +/- lo.mant] has [lo]'s low [g-1] bits strictly below
   the guard bit of any [prec]-bit rounding of a value at least
   [2^(prec-1+g-1)], so they can be folded into a sticky flag instead of
   materialized: compute only [hi*2 +/- ceil/floor(lo / 2^(g-1))] — one
   guard bit wide — and let [round_raw] consume the sticky. Identical
   result to rounding the full-width sum; the subtraction side falls
   back when cancellation eats into the guard bit (the fold is only
   valid while the top stays above [prec] bits). *)

let add_fin ~prec (a : fin) (b : fin) =
  if a.neg = b.neg then begin
    (* same sign: magnitude addition *)
    let hi, lo = if magnitude a >= magnitude b then (a, b) else (b, a) in
    let gap = magnitude hi - magnitude lo in
    if gap > max_align_bits prec then begin
      (* lo only contributes a sticky bit *)
      let sticky_exp = magnitude hi - max_align_bits prec in
      let m = N.add_shifted hi.mant (hi.exp - sticky_exp) N.one in
      round_raw ~prec ~sticky:false hi.neg m sticky_exp
    end
    else if hi.exp - lo.exp >= 1 && N.bit_length hi.mant >= prec then begin
      let g = hi.exp - lo.exp in
      let sticky = N.any_bit_below lo.mant (g - 1) in
      let m = N.add_shifted hi.mant 1 (N.shift_right lo.mant (g - 1)) in
      round_raw ~prec ~sticky hi.neg m (lo.exp + g - 1)
    end
    else begin
      let m =
        if a.exp >= b.exp then N.add_shifted a.mant (a.exp - b.exp) b.mant
        else N.add_shifted b.mant (b.exp - a.exp) a.mant
      in
      round_raw ~prec ~sticky:false a.neg m (min a.exp b.exp)
    end
  end
  else begin
    (* opposite signs: magnitude subtraction *)
    let c = compare_mag a b in
    if c = 0 then Zero false
    else begin
      let hi, lo = if c > 0 then (a, b) else (b, a) in
      let gap = magnitude hi - magnitude lo in
      if gap > max_align_bits prec then begin
        let sticky_exp = magnitude hi - max_align_bits prec in
        let m = N.sub_shifted hi.mant (hi.exp - sticky_exp) N.one in
        round_raw ~prec ~sticky:false hi.neg m sticky_exp
      end
      else begin
        let fused =
          let g = hi.exp - lo.exp in
          if g < 1 then None
          else begin
            let sticky = N.any_bit_below lo.mant (g - 1) in
            let t = N.shift_right lo.mant (g - 1) in
            let t = if sticky then N.add t N.one else t in
            let m1 = N.sub_shifted hi.mant 1 t in
            (* the guard-bit fold is only exact while the top keeps
               more than [prec] bits; cancellation past that must see
               the full-width difference *)
            if N.bit_length m1 > prec then
              Some (round_raw ~prec ~sticky hi.neg m1 (lo.exp + g - 1))
            else None
          end
        in
        match fused with
        | Some r -> r
        | None ->
            let e = min hi.exp lo.exp in
            let m =
              if hi.exp >= lo.exp then
                N.sub_shifted hi.mant (hi.exp - e) lo.mant
              else
                N.sub
                  (N.shift_left hi.mant (hi.exp - e))
                  (N.shift_left lo.mant (lo.exp - e))
            in
            round_raw ~prec ~sticky:false hi.neg m e
      end
    end
  end

let add ~prec x y =
  match (x, y) with
  | Nan, _ | _, Nan -> Nan
  | Inf a, Inf b -> if a = b then Inf a else Nan
  | Inf a, _ | _, Inf a -> Inf a
  | Zero a, Zero b -> if a && b then Zero true else Zero false
  | Zero _, (Fin _ as f) | (Fin _ as f), Zero _ -> round ~prec f
  | Fin a, Fin b -> add_fin ~prec a b

let sub ~prec x y = add ~prec x (neg y)

let mul ~prec x y =
  match (x, y) with
  | Nan, _ | _, Nan -> Nan
  | Inf a, Inf b -> Inf (a <> b)
  | Inf a, Zero _ | Zero _, Inf a -> ignore a; Nan
  | Inf a, Fin f | Fin f, Inf a -> Inf (a <> f.neg)
  | Zero a, Zero b -> Zero (a <> b)
  | Zero a, Fin f | Fin f, Zero a -> Zero (a <> f.neg)
  | Fin a, Fin b -> begin
      (* Canonical mantissas are odd, so the short product can usually
         round without computing the low half; identical result either
         way (see Natural.mul_round). *)
      match N.mul_round ~prec a.mant b.mant with
      | Some (mant, shift) ->
          make ~neg:(a.neg <> b.neg) ~mant ~exp:(a.exp + b.exp + shift)
      | None ->
          round_raw ~prec ~sticky:false (a.neg <> b.neg) (N.mul a.mant b.mant)
            (a.exp + b.exp)
    end

let div ~prec x y =
  match (x, y) with
  | Nan, _ | _, Nan -> Nan
  | Inf _, Inf _ -> Nan
  | Inf a, Zero b -> Inf (a <> b)
  | Inf a, Fin f -> Inf (a <> f.neg)
  | Zero _, Inf _ -> Zero (is_negative x <> is_negative y)
  | Zero a, Fin f -> Zero (a <> f.neg)
  | Fin f, Inf b -> Zero (f.neg <> b)
  | Zero a, Zero b -> ignore (a, b); Nan
  | Fin f, Zero b -> Inf (f.neg <> b)
  | Fin a, Fin b ->
      let la = N.bit_length a.mant and lb = N.bit_length b.mant in
      let s = max 0 (prec + 2 + lb - la) in
      let q, r = N.divmod (N.shift_left a.mant s) b.mant in
      round_raw ~prec ~sticky:(not (N.is_zero r)) (a.neg <> b.neg) q
        (a.exp - b.exp - s)

(* Division by a machine-integer divisor: bit-identical to
   [div ~prec x (of_int k)], but the whole quotient comes out of one
   fused shift-and-divide pass ({!Natural.divshift_int}) instead of the
   general path's chain of temporaries. Series evaluation in
   [Bigfloat_math] divides by a small integer once per term, which makes
   this the hottest division form in the tree. *)
let div_int ~prec x k =
  if k = 0 || k = min_int then div ~prec x (of_int k)
  else
    match x with
    | Nan -> Nan
    | Inf a -> Inf (a <> (k < 0))
    | Zero a -> Zero (a <> (k < 0))
    | Fin a ->
        let ka = Stdlib.abs k in
        (* mirror [of_int]'s canonical odd-mantissa decomposition *)
        let tz = ref 0 in
        let ko = ref ka in
        while !ko land 1 = 0 do
          incr tz;
          ko := !ko lsr 1
        done;
        let ko = !ko in
        let lb = ref 0 and v = ref ko in
        while !v > 0 do
          incr lb;
          v := !v lsr 1
        done;
        (* divisors past one limb take the general path *)
        if !lb > 31 then div ~prec x (of_int k)
        else begin
          let la = N.bit_length a.mant in
          let s = max 0 (prec + 2 + !lb - la) in
          let q, r = N.divshift_int a.mant s ko in
          round_raw ~prec ~sticky:(r <> 0) (a.neg <> (k < 0)) q
            (a.exp - !tz - s)
        end

let sqrt ~prec x =
  match x with
  | Nan -> Nan
  | Zero n -> Zero n
  | Inf false -> Inf false
  | Inf true -> Nan
  | Fin f when f.neg -> Nan
  | Fin f ->
      let par = ((f.exp mod 2) + 2) mod 2 in
      let h = (f.exp - par) / 2 in
      let m = N.shift_left f.mant par in
      (* scale by 4^k so the integer root carries prec+2 bits *)
      let bl = N.bit_length m in
      let k = max 0 (((2 * (prec + 2)) - bl + 1) / 2) in
      let m = N.shift_left m (2 * k) in
      let s = N.isqrt m in
      let sticky = not (N.equal (N.mul s s) m) in
      round_raw ~prec ~sticky false s (h - k)

let cmp x y =
  match (x, y) with
  | Nan, _ | _, Nan -> None
  | Zero _, Zero _ -> Some 0
  | Inf a, Inf b -> Some (Stdlib.compare b a)
  | Inf a, _ -> Some (if a then -1 else 1)
  | _, Inf b -> Some (if b then 1 else -1)
  | Zero _, Fin f -> Some (if f.neg then 1 else -1)
  | Fin f, Zero _ -> Some (if f.neg then -1 else 1)
  | Fin a, Fin b ->
      if a.neg && not b.neg then Some (-1)
      else if b.neg && not a.neg then Some 1
      else begin
        let c = compare_mag a b in
        Some (if a.neg then -c else c)
      end

let equal x y = match cmp x y with Some 0 -> true | Some _ | None -> false

let hash = function
  | Nan -> 0x6e616e
  | Inf n -> if n then 0x2d696e66 else 0x696e66
  | Zero _ -> 0 (* both zeros compare equal *)
  | Fin f ->
      let h = Hashtbl.hash (f.neg, f.exp) in
      (h * 1000003) + Hashtbl.hash f.mant
let lt x y = match cmp x y with Some c -> c < 0 | None -> false
let le x y = match cmp x y with Some c -> c <= 0 | None -> false
let gt x y = match cmp x y with Some c -> c > 0 | None -> false
let ge x y = match cmp x y with Some c -> c >= 0 | None -> false
let min2 x y = if is_nan x || is_nan y then Nan else if le x y then x else y
let max2 x y = if is_nan x || is_nan y then Nan else if ge x y then x else y

let of_float f =
  if Float.is_nan f then Nan
  else if f = Float.infinity then Inf false
  else if f = Float.neg_infinity then Inf true
  else if f = 0.0 then Zero (1.0 /. f < 0.0)
  else begin
    let bits = Int64.bits_of_float f in
    let negb = Int64.compare bits 0L < 0 in
    let biased = Int64.to_int (Int64.logand (Int64.shift_right_logical bits 52) 0x7FFL) in
    let frac = Int64.to_int (Int64.logand bits 0xF_FFFF_FFFF_FFFFL) in
    if biased = 0 then
      (* subnormal: frac * 2^-1074 *)
      make ~neg:negb ~mant:(N.of_int frac) ~exp:(-1074)
    else
      make ~neg:negb
        ~mant:(N.of_int (frac lor (1 lsl 52)))
        ~exp:(biased - 1023 - 52)
  end

let to_float t =
  match t with
  | Nan -> Float.nan
  | Inf false -> Float.infinity
  | Inf true -> Float.neg_infinity
  | Zero false -> 0.0
  | Zero true -> -0.0
  | Fin f -> begin
      let signf v = if f.neg then -.v else v in
      let mag = magnitude f in
      if mag > 1025 then signf Float.infinity
      else if mag < -1080 then signf 0.0
      else begin
        (* Round to an integer multiple of 2^q where q is the value's
           quantum: -1074 in the subnormal range, mag - 53 otherwise. *)
        let q = max (-1074) (mag - 53) in
        let v =
          if f.exp >= q then
            ldexp (N.to_float (N.shift_left f.mant (f.exp - q))) q
          else begin
            let drop = q - f.exp in
            let keep = N.shift_right f.mant drop in
            let low = N.sub f.mant (N.shift_left keep drop) in
            let halfway = N.shift_left N.one (drop - 1) in
            let c = N.compare low halfway in
            let up = if c > 0 then true else if c < 0 then false else N.testbit keep 0 in
            let keep = if up then N.add keep N.one else keep in
            ldexp (N.to_float keep) q
          end
        in
        signf v
      end
    end

let to_bigint t =
  match t with
  | Zero _ -> Some Bigint.zero
  | Fin f when f.exp >= 0 ->
      Some (Bigint.make ~neg:f.neg (N.shift_left f.mant f.exp))
  | Fin _ | Nan | Inf _ -> None

let is_integer t =
  match t with
  | Zero _ -> true
  | Fin f -> f.exp >= 0
  | Nan | Inf _ -> false

(* Truncate toward zero. *)
let trunc t =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f ->
      if f.exp >= 0 then t
      else begin
        let m = N.shift_right f.mant (-f.exp) in
        if N.is_zero m then Zero f.neg else make ~neg:f.neg ~mant:m ~exp:0
      end

let floor t =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f ->
      let tr = trunc t in
      if (not f.neg) || equal tr t then tr
      else add ~prec:exact tr minus_one

let ceil t =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f ->
      let tr = trunc t in
      if f.neg || equal tr t then tr else add ~prec:exact tr one

let round_to_int t =
  match t with
  | Nan | Inf _ | Zero _ -> t
  | Fin f ->
      (* ties away from zero, like C round() *)
      let shifted = add ~prec:exact (abs t) half in
      let fl = floor shifted in
      if f.neg then neg fl else fl

let of_decimal_string ~prec s =
  let s = String.trim s in
  let lower = String.lowercase_ascii s in
  match lower with
  | "nan" | "-nan" | "+nan" -> Nan
  | "inf" | "+inf" | "infinity" | "+infinity" -> Inf false
  | "-inf" | "-infinity" -> Inf true
  | _ ->
      let neg', s =
        if String.length s > 0 && s.[0] = '-' then
          (true, String.sub s 1 (String.length s - 1))
        else if String.length s > 0 && s.[0] = '+' then
          (false, String.sub s 1 (String.length s - 1))
        else (false, s)
      in
      let mantissa_part, exp10 =
        match String.index_opt (String.lowercase_ascii s) 'e' with
        | Some i ->
            ( String.sub s 0 i,
              int_of_string (String.sub s (i + 1) (String.length s - i - 1)) )
        | None -> (s, 0)
      in
      let int_part, frac_part =
        match String.index_opt mantissa_part '.' with
        | Some i ->
            ( String.sub mantissa_part 0 i,
              String.sub mantissa_part (i + 1)
                (String.length mantissa_part - i - 1) )
        | None -> (mantissa_part, "")
      in
      let digits = int_part ^ frac_part in
      let digits = if digits = "" then "0" else digits in
      let e10 = exp10 - String.length frac_part in
      let m = N.of_string digits in
      if N.is_zero m then Zero neg'
      else begin
        let v = make ~neg:neg' ~mant:m ~exp:0 in
        if e10 >= 0 then
          let p10 = of_bigint (Bigint.of_natural (N.pow_int (N.of_int 10) e10)) in
          mul ~prec v p10
        else
          let p10 =
            of_bigint (Bigint.of_natural (N.pow_int (N.of_int 10) (-e10)))
          in
          div ~prec v p10
      end

let to_decimal_string ?(digits = 17) t =
  match t with
  | Nan -> "nan"
  | Inf false -> "inf"
  | Inf true -> "-inf"
  | Zero false -> "0"
  | Zero true -> "-0"
  | Fin f ->
      (* Compute d = round(mant * 2^exp * 10^k) with enough decimal digits,
         then place the point. *)
      let mag = magnitude f in
      (* decimal exponent of the leading digit, approximately *)
      let dec_mag = Stdlib.int_of_float (Float.of_int mag *. 0.30103) in
      let k = digits - dec_mag in
      let scaled =
        if k >= 0 then begin
          let num = N.mul f.mant (N.pow_int (N.of_int 10) k) in
          if f.exp >= 0 then N.shift_left num f.exp
          else begin
            let den = N.shift_left N.one (-f.exp) in
            let q, r = N.divmod num den in
            (* round half up; exactness does not matter for display *)
            if N.compare (N.shift_left r 1) den >= 0 then N.add q N.one else q
          end
        end
        else begin
          let den = N.pow_int (N.of_int 10) (-k) in
          let num =
            if f.exp >= 0 then N.shift_left f.mant f.exp else f.mant
          in
          let den =
            if f.exp >= 0 then den else N.mul den (N.shift_left N.one (-f.exp))
          in
          let q, r = N.divmod num den in
          if N.compare (N.shift_left r 1) den >= 0 then N.add q N.one else q
        end
      in
      let ds = N.to_string scaled in
      let point = String.length ds - k in
      let sign = if f.neg then "-" else "" in
      let strip_zeros s =
        let n = ref (String.length s) in
        while !n > 1 && s.[!n - 1] = '0' do
          decr n
        done;
        String.sub s 0 !n
      in
      if point <= 0 then
        sign ^ "0." ^ String.make (-point) '0' ^ strip_zeros ds
      else if point >= String.length ds then
        if point - String.length ds > 6 then
          (* large integers: exponent form *)
          let mant_str = strip_zeros ds in
          let m2 =
            if String.length mant_str = 1 then mant_str
            else
              String.sub mant_str 0 1 ^ "."
              ^ String.sub mant_str 1 (String.length mant_str - 1)
          in
          sign ^ m2 ^ "e" ^ string_of_int (point - 1)
        else sign ^ ds ^ String.make (point - String.length ds) '0'
      else begin
        let raw = String.sub ds point (String.length ds - point) in
        let n = ref (String.length raw) in
        while !n > 0 && raw.[!n - 1] = '0' do
          decr n
        done;
        if !n = 0 then sign ^ String.sub ds 0 point
        else sign ^ String.sub ds 0 point ^ "." ^ String.sub raw 0 !n
      end

let pp fmt t = Format.pp_print_string fmt (to_decimal_string t)
