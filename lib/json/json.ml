(* A minimal JSON tree, printer, and parser — just enough for the fleet's
   JSONL results store. The repository deliberately avoids external
   dependencies (no yojson), and the store only needs objects of strings,
   numbers, and booleans, so a small faithful implementation beats a new
   package. Covers the full JSON grammar regardless, so hand-edited or
   foreign result files still parse. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Doubles print round-trippably; integral values print as integers so
   counts stay readable. JSON has no non-finite numbers: those become
   null, which the store treats as absent. *)
let add_num buf f =
  if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_finite f then
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let to_string (v : t) : string =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> add_num buf f
    | Str s -> escape_string buf s
    | Arr vs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char buf ',';
            go v)
          vs;
        Buffer.add_char buf ']'
    | Obj kvs ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_string buf k;
            Buffer.add_char buf ':';
            go v)
          kvs;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type parser_state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
        if st.pos >= String.length st.src then fail st "unterminated escape";
        let e = st.src.[st.pos] in
        st.pos <- st.pos + 1;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail st "bad \\u escape"
            in
            (* UTF-8 encode the BMP code point; surrogate pairs are not
               produced by our own printer and are passed through as two
               3-byte sequences, which round-trips our data unchanged. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail st "bad escape");
        go ()
    | c -> Buffer.add_char buf c; go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> fail st "malformed number"

let rec parse_value st : t =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      expect st '{';
      skip_ws st;
      if peek st = Some '}' then (expect st '}'; Obj [])
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; members ((k, v) :: acc)
          | Some '}' -> expect st '}'; List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      expect st '[';
      skip_ws st;
      if peek st = Some ']' then (expect st ']'; Arr [])
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> expect st ','; elems (v :: acc)
          | Some ']' -> expect st ']'; List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        Arr (elems [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string (s : string) : t =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let get_str ?(default = "") key v =
  match member key v with Some (Str s) -> s | _ -> default

let get_num ?(default = 0.0) key v =
  match member key v with Some (Num f) -> f | _ -> default

let get_int ?(default = 0) key v =
  match member key v with
  | Some (Num f) -> int_of_float f
  | _ -> default
