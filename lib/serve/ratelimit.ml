(* Per-client token buckets feeding the 503/Retry-After backpressure.

   One bucket per client key (the server keys on peer IP). A bucket
   holds at most [burst] tokens and refills at [rate] tokens/second;
   admitting a request costs one token. When the bucket is dry the
   caller answers 503 with a Retry-After derived from the time until
   the next whole token.

   The table is bounded: once it holds [max_clients] buckets, a sweep
   drops every bucket that has been idle long enough to have refilled
   completely — an address a full bucket would admit carries no state
   worth keeping. *)

type bucket = { mutable tokens : float; mutable last : float }

type t = {
  rate : float;  (* tokens per second *)
  burst : float;  (* bucket capacity *)
  mu : Mutex.t;
  tbl : (string, bucket) Hashtbl.t;
}

let max_clients = 4096

type verdict = Admit | Limit of float  (* seconds until the next token *)

let create ~rate ~burst : t =
  {
    rate = (if rate <= 0.0 then 1.0 else rate);
    burst = float_of_int (max 1 burst);
    mu = Mutex.create ();
    tbl = Hashtbl.create 97;
  }

let sweep_locked (t : t) (now : float) =
  if Hashtbl.length t.tbl >= max_clients then begin
    let full_after = t.burst /. t.rate in
    let stale =
      Hashtbl.fold
        (fun key b acc -> if now -. b.last >= full_after then key :: acc else acc)
        t.tbl []
    in
    List.iter (Hashtbl.remove t.tbl) stale
  end

let check ?(now = Unix.gettimeofday ()) (t : t) (key : string) : verdict =
  Mutex.lock t.mu;
  let b =
    match Hashtbl.find_opt t.tbl key with
    | Some b -> b
    | None ->
        sweep_locked t now;
        let b = { tokens = t.burst; last = now } in
        Hashtbl.replace t.tbl key b;
        b
  in
  let elapsed = max 0.0 (now -. b.last) in
  b.tokens <- Float.min t.burst (b.tokens +. (elapsed *. t.rate));
  b.last <- now;
  let verdict =
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      Admit
    end
    else Limit ((1.0 -. b.tokens) /. t.rate)
  in
  Mutex.unlock t.mu;
  verdict
