(* fpgrind.serve client: a minimal blocking HTTP/1.1 client — one fresh
   connection per request, Connection: close — used by `fpgrind client`,
   the CI smoke run, and the tests. *)

type response = {
  c_status : int;
  c_headers : (string * string) list;
  c_body : string;
}

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith ("cannot resolve host " ^ host))

let request ?(host = "127.0.0.1") ~port ~meth ~path ?(headers = [])
    ?(body = "") () : response =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (resolve host, port));
      let buf = Buffer.create 256 in
      Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
      Buffer.add_string buf (Printf.sprintf "host: %s:%d\r\n" host port);
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
        headers;
      if body <> "" || meth = "POST" || meth = "PUT" then
        Buffer.add_string buf
          (Printf.sprintf "content-length: %d\r\n" (String.length body));
      Buffer.add_string buf "connection: close\r\n\r\n";
      Buffer.add_string buf body;
      let s = Buffer.contents buf in
      let n = String.length s in
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write_substring fd s !sent (n - !sent)
      done;
      let status, headers, body = Http.read_response (Http.reader_of_fd fd) in
      { c_status = status; c_headers = headers; c_body = body })
