(* fpgrind.serve client: a minimal blocking HTTP/1.1 client used by
   `fpgrind client`, `fpgrind loadgen`, the CI smoke run, and the tests.

   [request] is the original one-shot path: fresh connection,
   Connection: close. [connect]/[request_conn] hold one keep-alive
   connection open across requests — responses are delimited by
   content-length, and when the server ends the connection (request cap
   reached, idle timeout, restarting shard) the next request
   transparently reconnects and retries once. *)

type response = {
  c_status : int;
  c_headers : (string * string) list;
  c_body : string;
}

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (addr, _); _ } :: _ -> addr
      | _ -> failwith ("cannot resolve host " ^ host))

let send_all fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let request_bytes ~host ~port ~meth ~path ~headers ~body ~keep_alive : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  Buffer.add_string buf (Printf.sprintf "host: %s:%d\r\n" host port);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  if body <> "" || meth = "POST" || meth = "PUT" then
    Buffer.add_string buf
      (Printf.sprintf "content-length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n\r\n"
     else "connection: close\r\n\r\n");
  Buffer.add_string buf body;
  Buffer.contents buf

let request ?(host = "127.0.0.1") ~port ~meth ~path ?(headers = [])
    ?(body = "") () : response =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (resolve host, port));
      send_all fd
        (request_bytes ~host ~port ~meth ~path ~headers ~body
           ~keep_alive:false);
      let status, headers, body = Http.read_response (Http.reader_of_fd fd) in
      { c_status = status; c_headers = headers; c_body = body })

(* ---------- keep-alive connections ---------- *)

type conn = {
  cn_host : string;
  cn_port : int;
  mutable cn_fd : Unix.file_descr option;
  mutable cn_rd : Http.reader option;
}

let connect ?(host = "127.0.0.1") ~port () : conn =
  { cn_host = host; cn_port = port; cn_fd = None; cn_rd = None }

let close (c : conn) : unit =
  (match c.cn_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.cn_fd <- None;
  c.cn_rd <- None

let ensure_connected (c : conn) : Unix.file_descr * Http.reader =
  match (c.cn_fd, c.cn_rd) with
  | Some fd, Some rd -> (fd, rd)
  | _ ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (resolve c.cn_host, c.cn_port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let rd = Http.reader_of_fd fd in
      c.cn_fd <- Some fd;
      c.cn_rd <- Some rd;
      (fd, rd)

exception Stale
(* the server closed the connection between our requests *)

let roundtrip (c : conn) ~meth ~path ~headers ~body : response =
  let fd, rd = ensure_connected c in
  let bytes =
    request_bytes ~host:c.cn_host ~port:c.cn_port ~meth ~path ~headers ~body
      ~keep_alive:true
  in
  (try send_all fd bytes
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Stale);
  match Http.read_response rd with
  | status, rheaders, rbody ->
      (* honor the server's verdict so the next request starts clean *)
      (match List.assoc_opt "connection" rheaders with
      | Some v when String.lowercase_ascii v = "close" -> close c
      | _ -> ());
      { c_status = status; c_headers = rheaders; c_body = rbody }
  | exception Http.Closed -> raise Stale
  | exception Http.Error _ when Http.(rd.eof) -> raise Stale

(* One transparent retry on a stale connection: a keep-alive peer is
   allowed to hang up between requests (cap reached, idle timeout,
   shard respawn), and the request has not been processed when the
   connection dies before a status line arrives. *)
let request_conn (c : conn) ~meth ~path ?(headers = []) ?(body = "") () :
    response =
  match roundtrip c ~meth ~path ~headers ~body with
  | r -> r
  | exception Stale ->
      close c;
      roundtrip c ~meth ~path ~headers ~body
