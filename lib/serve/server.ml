(* fpgrind.serve — the network analysis service.

   An accept loop (main thread, self-pipe wakeup) hands each connection
   to a systhread, which serves HTTP/1.1 keep-alive requests off it in a
   loop ([Http.session]: pipelined reads, per-connection request cap and
   idle timeout); handlers parse the request and dispatch analysis work
   onto a persistent Fleet.Pool of domains through a bounded queue.
   Backpressure is explicit: when the queue is full, POST /analyze and
   POST /fuzz answer 503 with a Retry-After hint instead of queueing
   unboundedly. Repeated submissions of the same source are served from
   the Fleet content-hash cache without re-analysis, and the cache can be
   warmed from / flushed to a JSONL store (the same format `fpgrind
   suite --json` writes).

   Graceful shutdown ([stop], or SIGINT/SIGTERM in the CLI): the accept
   loop exits and closes the listening socket, open connections run to
   completion — which drains their queued jobs — the pool is drained and
   joined, and the store is flushed. *)

type config = {
  port : int;  (* 0 picks an ephemeral port; see [port] for the result *)
  host : string;
  jobs : int;  (* pool worker domains *)
  queue : int;  (* bounded queue depth; overflow answers 503 *)
  timeout : float option;  (* default per-request analysis deadline *)
  max_body : int;
  store_path : string option;  (* JSONL cache warm-start + shutdown flush *)
  findings_path : string option;  (* campaign findings JSONL feed *)
  quiet : bool;
  keep_alive_requests : int;  (* requests served per connection before close *)
  idle_timeout : float;  (* seconds a keep-alive connection may sit quiet *)
  rate_limit : float option;  (* per-client POSTs/second; None = unlimited *)
  rate_burst : int;  (* token-bucket capacity *)
  shared_cache_path : string option;  (* cross-shard JSONL result cache *)
  shard_status_path : string option;  (* shard parent's status file *)
  listen_fd : Unix.file_descr option;
      (* pre-bound listening socket (shard workers inherit the parent's);
         None binds host:port *)
}

let default_config =
  {
    port = 8080;
    host = "127.0.0.1";
    jobs = 1;
    queue = 16;
    timeout = None;
    max_body = Http.default_max_body;
    store_path = None;
    findings_path = None;
    quiet = false;
    keep_alive_requests = 100;
    idle_timeout = 5.0;
    rate_limit = None;
    rate_burst = 16;
    shared_cache_path = None;
    shard_status_path = None;
    listen_fd = None;
  }

type t = {
  cfg : config;
  pool : Fleet.Pool.t;
  reg : Metrics.t;
  m_requests : Metrics.counter;  (* by endpoint, status *)
  m_request_seconds : Metrics.histogram;  (* by endpoint *)
  m_queue_depth : Metrics.gauge;
  m_in_flight : Metrics.gauge;
  m_cache_hits : Metrics.counter;
  m_cache_misses : Metrics.counter;
  m_rejected : Metrics.counter;  (* queue-full 503s *)
  m_jobs : Metrics.counter;  (* fleet jobs by status, via the observer *)
  m_job_seconds : Metrics.histogram;
  m_sanitize_jobs : Metrics.counter;  (* sanitizer-engine jobs by status *)
  m_sanitize_findings : Metrics.counter;  (* findings those jobs reported *)
  m_tiered_jobs : Metrics.counter;  (* tiered-engine jobs by status *)
  m_tiered_escalations : Metrics.counter;  (* jobs that ran pass 2 *)
  m_tiered_slice_stmts : Metrics.counter;  (* statements escalated *)
  m_store_corrupt : Metrics.gauge;
  m_store_torn : Metrics.counter;  (* torn store records, monotone *)
  m_campaign_findings : Metrics.gauge;  (* findings in the feed *)
  m_campaign_feed_bytes : Metrics.gauge;
  m_blocks_compiled : Metrics.counter;  (* Vex superblocks pre-decoded *)
  m_compile_hits : Metrics.counter;  (* compile-cache hits *)
  m_regimes : Metrics.counter;  (* regimes inferred by regime jobs *)
  m_regime_points : Metrics.counter;  (* point evals spent by the search *)
  m_active_conns : Metrics.gauge;  (* connections currently open *)
  m_ratelimited : Metrics.counter;  (* token-bucket 503s *)
  m_shard_restarts : Metrics.gauge;  (* respawns, via the parent's status file *)
  shared : Cachefile.t option;  (* cross-shard result cache *)
  limiter : Ratelimit.t option;
  mutable torn_seen : int;  (* last Store.corrupt_tail_total observed *)
  mutable compiled_seen : int;  (* last Compile.blocks_compiled_total *)
  mutable compile_hits_seen : int;  (* last Compile.cache_hits_total *)
  cache_mu : Mutex.t;
  cache : (string, Fleet.outcome) Hashtbl.t;
  mutable persisted : Fleet.outcome list;  (* newest first *)
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conn_mu : Mutex.t;
  conn_cond : Condition.t;
  mutable conns : int;
}

let port t = t.bound_port

(* ---------- creation ---------- *)

let install_observer t =
  Fleet.set_observer
    {
      Fleet.ob_started = (fun _ -> ());
      Fleet.ob_finished =
        (fun (o : Fleet.outcome) ->
          Metrics.inc t.m_jobs [ Fleet.Store.status_to_string o.Fleet.o_status ];
          Metrics.observe t.m_job_seconds o.Fleet.o_wall_s;
          if o.Fleet.o_engine = "sanitize" then begin
            Metrics.inc t.m_sanitize_jobs
              [ Fleet.Store.status_to_string o.Fleet.o_status ];
            match o.Fleet.o_payload with
            | Some p ->
                Metrics.inc ~by:(float_of_int p.Fleet.p_metrics.Fleet.m_causes)
                  t.m_sanitize_findings []
            | None -> ()
          end;
          if o.Fleet.o_engine = "tiered" then begin
            Metrics.inc t.m_tiered_jobs
              [ Fleet.Store.status_to_string o.Fleet.o_status ];
            match o.Fleet.o_payload with
            | Some p ->
                Metrics.inc
                  ~by:(float_of_int p.Fleet.p_metrics.Fleet.m_escalations)
                  t.m_tiered_escalations [];
                Metrics.inc
                  ~by:(float_of_int p.Fleet.p_metrics.Fleet.m_slice_stmts)
                  t.m_tiered_slice_stmts []
            | None -> ()
          end;
          match o.Fleet.o_payload with
          | Some { Fleet.p_regime = Some rs; _ } ->
              Metrics.inc
                ~by:(float_of_int rs.Fleet.rs_regimes)
                t.m_regimes [];
              Metrics.inc
                ~by:(float_of_int rs.Fleet.rs_search_points)
                t.m_regime_points []
          | _ -> ());
    }

let create (cfg : config) : t =
  let reg = Metrics.create () in
  let m_requests =
    Metrics.counter reg ~labels:[ "endpoint"; "status" ]
      ~help:"HTTP requests served, by endpoint and response status."
      "fpgrind_http_requests_total"
  in
  let m_request_seconds =
    Metrics.histogram reg ~labels:[ "endpoint" ]
      ~help:"Wall time spent serving each request, by endpoint."
      "fpgrind_http_request_seconds"
  in
  let m_queue_depth =
    Metrics.gauge reg ~help:"Jobs waiting in the bounded analysis queue."
      "fpgrind_queue_depth"
  in
  let m_in_flight =
    Metrics.gauge reg ~help:"Jobs currently running on pool workers."
      "fpgrind_jobs_in_flight"
  in
  let m_cache_hits =
    Metrics.counter reg
      ~help:"Requests answered from the content-hash result cache."
      "fpgrind_cache_hits_total"
  in
  let m_cache_misses =
    Metrics.counter reg ~help:"Requests that had to run a fresh analysis."
      "fpgrind_cache_misses_total"
  in
  let m_rejected =
    Metrics.counter reg
      ~help:"Requests refused with 503 because the queue was full."
      "fpgrind_rejected_total"
  in
  let m_jobs =
    Metrics.counter reg ~labels:[ "status" ]
      ~help:"Fleet engine jobs finished, by outcome status."
      "fpgrind_fleet_jobs_total"
  in
  let m_job_seconds =
    Metrics.histogram reg ~help:"Wall time of finished fleet jobs."
      "fpgrind_fleet_job_seconds"
  in
  let m_sanitize_jobs =
    Metrics.counter reg ~labels:[ "status" ]
      ~help:"Sanitizer-engine jobs finished, by outcome status."
      "fpgrind_sanitize_jobs_total"
  in
  let m_sanitize_findings =
    Metrics.counter reg
      ~help:"Findings reported by finished sanitizer-engine jobs."
      "fpgrind_sanitize_findings_total"
  in
  let m_tiered_jobs =
    Metrics.counter reg ~labels:[ "status" ]
      ~help:"Tiered-engine jobs finished, by outcome status."
      "fpgrind_tiered_jobs_total"
  in
  let m_tiered_escalations =
    Metrics.counter reg
      ~help:
        "Tiered-engine jobs whose sanitizer pass flagged spots and ran the \
         full-precision escalation pass."
      "fpgrind_tiered_escalations_total"
  in
  let m_tiered_slice_stmts =
    Metrics.counter reg
      ~help:"Statements escalated to full precision by tiered-engine jobs."
      "fpgrind_tiered_slice_stmts_total"
  in
  let m_store_corrupt =
    Metrics.gauge reg
      ~help:"Truncated trailing JSONL store records skipped since start."
      "fpgrind_store_corrupt_lines_total"
  in
  let m_store_torn =
    Metrics.counter reg
      ~help:
        "Torn JSONL store records skipped by lenient loads. Monotone \
         counter view of the same signal as the corrupt-lines gauge."
      "fpgrind_store_torn_records_total"
  in
  let m_campaign_findings =
    Metrics.gauge reg
      ~help:"Findings currently in the campaign feed served by /findings."
      "fpgrind_campaign_findings_total"
  in
  let m_campaign_feed_bytes =
    Metrics.gauge reg ~help:"Size of the campaign findings feed in bytes."
      "fpgrind_campaign_feed_bytes"
  in
  let m_blocks_compiled =
    Metrics.counter reg
      ~help:"Vex superblocks pre-decoded into flat compiled statement streams."
      "fpgrind_blocks_compiled_total"
  in
  let m_compile_hits =
    Metrics.counter reg
      ~help:"Program executions served from the compiled-block cache."
      "fpgrind_compile_cache_hits_total"
  in
  let m_regimes =
    Metrics.counter reg
      ~help:
        "Regimes inferred by finished regime-analysis jobs (1 per job when \
         no branch ships)."
      "fpgrind_regimes_inferred_total"
  in
  let m_regime_points =
    Metrics.counter reg
      ~help:"Point evaluations spent by regime threshold searches."
      "fpgrind_regime_search_points_total"
  in
  let m_active_conns =
    Metrics.gauge reg ~help:"Client connections currently open."
      "fpgrind_active_connections"
  in
  let m_ratelimited =
    Metrics.counter reg
      ~help:"Requests refused with 503 by the per-client token bucket."
      "fpgrind_ratelimited_total"
  in
  let m_shard_restarts =
    Metrics.gauge reg
      ~help:
        "Shard workers respawned by the parent after a crash or kill \
         (0 when not running under the shard layer)."
      "fpgrind_shard_restarts_total"
  in
  (* warm the cache from the store, tolerating a torn tail *)
  let cache = Hashtbl.create 97 in
  let persisted = ref [] in
  (match cfg.store_path with
  | Some path when Sys.file_exists path ->
      let outcomes, _skipped = Fleet.Store.load_lenient path in
      List.iter
        (fun (o : Fleet.outcome) ->
          persisted := o :: !persisted;
          match o.Fleet.o_status with
          | (Fleet.Done | Fleet.Cached) when o.Fleet.o_key <> "" ->
              Hashtbl.replace cache o.Fleet.o_key o
          | _ -> ())
        outcomes
  | _ -> ());
  let listen_fd =
    match cfg.listen_fd with
    | Some fd -> fd
    | None ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        (try
           Unix.bind fd
             (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
           Unix.listen fd 128
         with e ->
           (try Unix.close fd with _ -> ());
           raise e);
        fd
  in
  (* Non-blocking accept: with several shard workers select()ing on one
     inherited socket, a connection that wakes everyone is accepted by
     exactly one — the losers see EAGAIN instead of blocking. *)
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      cfg;
      pool = Fleet.Pool.create ~queue:cfg.queue ~jobs:cfg.jobs ();
      reg;
      m_requests;
      m_request_seconds;
      m_queue_depth;
      m_in_flight;
      m_cache_hits;
      m_cache_misses;
      m_rejected;
      m_jobs;
      m_job_seconds;
      m_sanitize_jobs;
      m_sanitize_findings;
      m_tiered_jobs;
      m_tiered_escalations;
      m_tiered_slice_stmts;
      m_store_corrupt;
      m_store_torn;
      m_campaign_findings;
      m_campaign_feed_bytes;
      m_blocks_compiled;
      m_compile_hits;
      m_regimes;
      m_regime_points;
      m_active_conns;
      m_ratelimited;
      m_shard_restarts;
      shared = Option.map Cachefile.create cfg.shared_cache_path;
      limiter =
        Option.map
          (fun rate -> Ratelimit.create ~rate ~burst:cfg.rate_burst)
          cfg.rate_limit;
      torn_seen = 0;
      compiled_seen = 0;
      compile_hits_seen = 0;
      cache_mu = Mutex.create ();
      cache;
      persisted = !persisted;
      listen_fd;
      bound_port;
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      conn_mu = Mutex.create ();
      conn_cond = Condition.create ();
      conns = 0;
    }
  in
  install_observer t;
  (* materialize the unlabeled torn-records series so a clean server
     still renders the counter at 0 *)
  Metrics.inc ~by:0.0 t.m_store_torn [];
  Metrics.inc ~by:0.0 t.m_blocks_compiled [];
  Metrics.inc ~by:0.0 t.m_compile_hits [];
  Metrics.inc ~by:0.0 t.m_ratelimited [];
  t

(* ---------- building analysis jobs from request bodies ---------- *)

let max_steps = 200_000_000 (* same budget as Fleet.bench_spec *)

(* [engine] comes from the query on /analyze and is forced by the
   /sanitize endpoint; either way it lands in the config, so the cache
   key (which hashes the fingerprint) separates the engines' results. *)
let cfg_of_query ?engine rq : Core.Config.t =
  let precision =
    Router.q_int rq "precision"
      ~default:Core.Config.default.Core.Config.precision
  in
  let threshold =
    Router.q_float rq "threshold"
      ~default:Core.Config.default.Core.Config.error_threshold
  in
  if precision < 53 || precision > 65536 then
    Http.fail 400 (Printf.sprintf "precision %d out of range [53, 65536]" precision);
  let engine =
    match engine with
    | Some e -> e
    | None -> (
        let name = Router.q_str rq "engine" ~default:"full" in
        match Core.Config.engine_of_name name with
        | Some e -> e
        | None ->
            Http.fail 400
              (Printf.sprintf
                 "unknown engine %S (expected full, sanitize or tiered)" name))
  in
  {
    Core.Config.default with
    Core.Config.precision;
    error_threshold = threshold;
    engine;
  }

(* an ad-hoc source's cache key: everything that determines its result,
   mirroring Fleet.job_key for suite benchmarks *)
let adhoc_key ~kind ~cfg ~iterations ~(inputs : float array) (src : string) =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          ([ kind; src; string_of_int iterations; Core.Config.fingerprint cfg ]
          @ (Array.to_list inputs |> List.map (Printf.sprintf "%h")))))

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Sniff the body the way the CLI sniffs its PROGRAM argument:
   "bench:NAME" names a suite benchmark, a leading '(' is FPCore source,
   anything else is MiniC source. Raises [Http.Error] 400 on anything
   that does not compile. *)
let analyze_spec ?engine (rq : Http.request) : Fleet.spec =
  let cfg = cfg_of_query ?engine rq in
  let iterations = Router.q_int rq "iterations" ~default:16 in
  let seed = Router.q_int rq "seed" ~default:1 in
  if iterations < 1 || iterations > 10_000 then
    Http.fail 400 (Printf.sprintf "iterations %d out of range [1, 10000]" iterations);
  let body = String.trim rq.Http.rq_body in
  if body = "" then Http.fail 400 "empty request body";
  if has_prefix ~prefix:"bench:" body then begin
    let name = String.sub body 6 (String.length body - 6) in
    let regimes = Router.q_int rq "regimes" ~default:0 <> 0 in
    match Fpcore.Suite.enumerate ~iterations ~seed ~names:[ name ] () with
    | [ job ] ->
        let base = Fleet.bench_spec ~cfg job in
        let bench = job.Fpcore.Suite.job_bench in
        if (not regimes) || bench.Fpcore.Suite.group <> `Straight then base
        else
          (* same engine work, then regime inference at the official
             swept configuration; the key suffix keeps regime-annotated
             results out of the plain /analyze cache entry and back *)
          let work ~tick =
            let p = base.Fleet.sp_work ~tick in
            let r =
              Regime.infer ~points:Regime.official_points
                ~depth:Regime.official_depth ~opts:Regime.official_options
                ~seed bench
            in
            {
              p with
              Fleet.p_regime =
                Some
                  {
                    Fleet.rs_regimes =
                      Regime.selected_regimes r.Regime.re_selected
                        r.Regime.re_regimes;
                    rs_thresholds = Regime.thresholds r;
                    rs_error_table = Regime.table r;
                    rs_search_points = r.Regime.re_search_points;
                  };
            }
          in
          { base with Fleet.sp_key = base.Fleet.sp_key ^ ":regimes"; sp_work = work }
    | _ -> Http.fail 400 ("unknown benchmark: " ^ name)
    | exception Invalid_argument msg -> Http.fail 400 msg
  end
  else begin
    let inputs = Array.of_list (Router.q_floats rq "inputs" ~default:[]) in
    let name = Router.q_str rq "name" ~default:"<request>" in
    let kind, prog =
      if body.[0] = '(' then begin
        match Fpcore.Parse.parse_core body with
        | core -> ("fpcore", Fpcore.Compile.compile ~n_inputs:iterations core)
        | exception Fpcore.Parse.Error msg ->
            Http.fail 400 ("fpcore: " ^ msg)
        | exception Fpcore.Sexp.Parse_error msg ->
            Http.fail 400 ("fpcore: " ^ msg)
      end
      else
        match Minic.compile ~file:name rq.Http.rq_body with
        | prog -> ("minic", prog)
        | exception Minic.Compile_error msg -> Http.fail 400 msg
    in
    let work ~tick =
      match cfg.Core.Config.engine with
      | Core.Config.Full ->
          let nodes0 = Core.Trace.created_in_domain () in
          let mat0 = Core.Trace.materialized_in_domain () in
          let r = Core.Analysis.analyze ~cfg ~max_steps ~inputs ~tick prog in
          Fleet.payload_for ~name ~group:kind ~nodes0 ~mat0 r
      | Core.Config.Sanitize ->
          let r = Sanitize.Sexec.run ~max_steps ~inputs ~tick cfg prog in
          Fleet.san_payload_for ~name ~group:kind r
      | Core.Config.Tiered ->
          let nodes0 = Core.Trace.created_in_domain () in
          let mat0 = Core.Trace.materialized_in_domain () in
          let r = Tiered.analyze ~cfg ~max_steps ~inputs ~tick prog in
          Fleet.tiered_payload_for ~name ~group:kind ~nodes0 ~mat0 r
    in
    {
      Fleet.sp_name = name;
      sp_group = kind;
      sp_key = adhoc_key ~kind ~cfg ~iterations ~inputs body;
      sp_engine = Core.Config.engine_name cfg.Core.Config.engine;
      sp_work = work;
    }
  end

let fuzz_iters_cap = 10_000

let fuzz_spec (rq : Http.request) ~timeout : Fleet.spec =
  let seed = Router.q_int rq "seed" ~default:42 in
  let iters = Router.q_int rq "iters" ~default:100 in
  if iters < 1 || iters > fuzz_iters_cap then
    Http.fail 400
      (Printf.sprintf "iters %d out of range [1, %d]" iters fuzz_iters_cap);
  let work ~tick:_ =
    let t = Fuzz.Campaign.run ~jobs:1 ?timeout ~seed ~iters () in
    let count p =
      List.length (List.filter p t.Fuzz.Campaign.t_entries)
    in
    let passed =
      count (fun e -> e.Fuzz.Campaign.e_status = Fuzz.Campaign.Passed)
    in
    let skipped =
      count (fun (e : Fuzz.Campaign.entry) ->
          match e.Fuzz.Campaign.e_status with
          | Fuzz.Campaign.Skipped _ -> true
          | _ -> false)
    in
    let failures = Fuzz.Campaign.failed t in
    let entries =
      List.map
        (fun (e : Fuzz.Campaign.entry) ->
          let oracle, detail =
            match e.Fuzz.Campaign.e_status with
            | Fuzz.Campaign.Divergent d ->
                (d.Fuzz.Oracle.d_oracle, d.Fuzz.Oracle.d_detail)
            | Fuzz.Campaign.Error msg -> ("error", msg)
            | Fuzz.Campaign.Passed | Fuzz.Campaign.Skipped _ -> ("", "")
          in
          Fleet.Json.Obj
            [
              ("index", Fleet.Json.Num (float_of_int e.Fuzz.Campaign.e_index));
              ("digest", Fleet.Json.Str e.Fuzz.Campaign.e_digest);
              ("oracle", Fleet.Json.Str oracle);
              ("detail", Fleet.Json.Str detail);
            ])
        failures
    in
    let json =
      Fleet.Json.Obj
        [
          ("seed", Fleet.Json.Num (float_of_int seed));
          ("iters", Fleet.Json.Num (float_of_int iters));
          ("passed", Fleet.Json.Num (float_of_int passed));
          ("skipped", Fleet.Json.Num (float_of_int skipped));
          ("divergent", Fleet.Json.Num (float_of_int (List.length failures)));
          ("failures", Fleet.Json.Arr entries);
        ]
    in
    {
      Fleet.p_metrics =
        {
          Fleet.m_blocks = 0;
          m_stmts = 0;
          m_stmts_executed = 0;
          m_fp_ops = 0;
          m_trace_nodes = 0;
          m_traces_materialized = 0;
          m_spots = 0;
          m_causes = List.length failures;
          m_compensations = 0;
          m_err_max = 0.0;
          m_escalations = 0;
          m_slice_stmts = 0;
        };
      p_summary =
        Printf.sprintf "fuzz seed %d: %d programs, %d divergent, %d skipped"
          seed iters (List.length failures) skipped;
      p_report = Fleet.Json.to_string json;
      p_regime = None;
    }
  in
  {
    Fleet.sp_name = Printf.sprintf "fuzz:seed=%d:iters=%d" seed iters;
    sp_group = "fuzz";
    sp_key = "";  (* campaigns are cheap to re-run and rarely repeated *)
    sp_engine = "full";
    sp_work = work;
  }

(* ---------- handlers ---------- *)

let record t (o : Fleet.outcome) =
  Mutex.lock t.cache_mu;
  t.persisted <- o :: t.persisted;
  (match o.Fleet.o_status with
  | (Fleet.Done | Fleet.Cached) when o.Fleet.o_key <> "" ->
      Hashtbl.replace t.cache o.Fleet.o_key o
  | _ -> ());
  Mutex.unlock t.cache_mu;
  match t.shared with
  | Some shared -> Cachefile.publish shared o
  | None -> ()

let cached t key =
  if key = "" then None
  else begin
    Mutex.lock t.cache_mu;
    let o = Hashtbl.find_opt t.cache key in
    Mutex.unlock t.cache_mu;
    match (o, t.shared) with
    | (Some _ as hit), _ -> hit
    | None, None -> None
    | None, Some shared -> (
        (* a sibling shard may have computed it; tail the shared file *)
        match Cachefile.lookup shared key with
        | Some o ->
            Mutex.lock t.cache_mu;
            Hashtbl.replace t.cache key o;
            Mutex.unlock t.cache_mu;
            Some o
        | None -> None)
  end

let status_of_outcome (o : Fleet.outcome) =
  match o.Fleet.o_status with
  | Fleet.Done | Fleet.Cached -> 200
  | Fleet.Timed_out -> 504
  | Fleet.Failed _ -> 500

let outcome_response (o : Fleet.outcome) =
  Http.json_response (status_of_outcome o) (Fleet.Store.outcome_to_json o)

let overloaded_response t =
  Metrics.inc t.m_rejected [];
  Http.error_response 503
    ~headers:[ ("retry-after", "1") ]
    (Printf.sprintf "analysis queue is full (depth %d); retry shortly"
       t.cfg.queue)

(* submit to the pool with backpressure, await, record, respond *)
let run_spec t rq (sp : Fleet.spec) ~cacheable : Http.response =
  let timeout =
    match Router.q_float_opt rq "timeout" with
    | Some s -> Some s
    | None -> t.cfg.timeout
  in
  match cached t (if cacheable then sp.Fleet.sp_key else "") with
  | Some prev ->
      Metrics.inc t.m_cache_hits [];
      outcome_response
        {
          prev with
          Fleet.o_name = sp.Fleet.sp_name;
          o_group = sp.Fleet.sp_group;
          o_key = sp.Fleet.sp_key;
          o_engine = sp.Fleet.sp_engine;
          o_status = Fleet.Cached;
          o_wall_s = 0.0;
        }
  | None -> (
      if cacheable then Metrics.inc t.m_cache_misses [];
      match Fleet.Pool.submit t.pool ?timeout sp with
      | None -> overloaded_response t
      | Some ticket ->
          let o = Fleet.Pool.await t.pool ticket in
          record t o;
          outcome_response o)

let handle_analyze t rq = run_spec t rq (analyze_spec rq) ~cacheable:true

(* same body sniffing and caching as /analyze, engine pinned to the
   sanitizer (an `engine` query parameter is ignored here) *)
let handle_sanitize t rq =
  run_spec t rq
    (analyze_spec ~engine:Core.Config.Sanitize rq)
    ~cacheable:true

let handle_fuzz t rq =
  let timeout =
    match Router.q_float_opt rq "timeout" with
    | Some s -> Some s
    | None -> t.cfg.timeout
  in
  run_spec t rq (fuzz_spec rq ~timeout) ~cacheable:false

let handle_healthz _t _rq = Http.text_response 200 "ok\n"

(* The campaign findings feed: the raw append-only JSONL file, served
   verbatim so a consumer sees exactly what the campaign wrote (the
   byte-identity contract extends to the wire). An unconfigured server
   404s; a configured one whose campaign has found nothing yet serves
   an empty feed. *)
let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let findings_feed t : string option =
  match t.cfg.findings_path with
  | None -> None
  | Some path ->
      Some (if Sys.file_exists path then read_whole_file path else "")

let handle_findings t _rq =
  match findings_feed t with
  | None -> Http.error_response 404 "no findings feed configured"
  | Some body ->
      Http.response
        ~headers:[ ("content-type", "application/x-ndjson") ]
        200 body

let update_campaign_metrics t =
  match findings_feed t with
  | None -> ()
  | Some body ->
      let findings =
        List.length
          (List.filter
             (fun l -> String.trim l <> "")
             (String.split_on_char '\n' body))
      in
      Metrics.set t.m_campaign_findings (float_of_int findings);
      Metrics.set t.m_campaign_feed_bytes (float_of_int (String.length body))

(* The shard parent's view of the world, for this worker's /metrics.
   Written atomically (temp + rename) by Shard.run; absent or torn files
   read as 0 restarts. *)
let shard_restarts t : int =
  match t.cfg.shard_status_path with
  | None -> 0
  | Some path -> (
      if not (Sys.file_exists path) then 0
      else
        match
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        with
        | src -> (
            match Fleet.Json.of_string (String.trim src) with
            | j -> Fleet.Json.get_int "restarts" j
            | exception _ -> 0)
        | exception Sys_error _ -> 0)

let handle_metrics t _rq =
  Metrics.set t.m_queue_depth (float_of_int (Fleet.Pool.queue_depth t.pool));
  Metrics.set t.m_in_flight (float_of_int (Fleet.Pool.in_flight t.pool));
  Mutex.lock t.conn_mu;
  Metrics.set t.m_active_conns (float_of_int t.conns);
  Mutex.unlock t.conn_mu;
  Metrics.set t.m_shard_restarts (float_of_int (shard_restarts t));
  let torn = Fleet.Store.corrupt_tail_total () in
  Metrics.set t.m_store_corrupt (float_of_int torn);
  (* counters are inc-only, so surface the monotone total as a delta
     against the last scrape *)
  if torn > t.torn_seen then begin
    Metrics.inc ~by:(float_of_int (torn - t.torn_seen)) t.m_store_torn [];
    t.torn_seen <- torn
  end;
  let compiled = Vex.Compile.blocks_compiled_total () in
  if compiled > t.compiled_seen then begin
    Metrics.inc
      ~by:(float_of_int (compiled - t.compiled_seen))
      t.m_blocks_compiled [];
    t.compiled_seen <- compiled
  end;
  let hits = Vex.Compile.cache_hits_total () in
  if hits > t.compile_hits_seen then begin
    Metrics.inc ~by:(float_of_int (hits - t.compile_hits_seen)) t.m_compile_hits [];
    t.compile_hits_seen <- hits
  end;
  update_campaign_metrics t;
  Http.response
    ~headers:
      [ ("content-type", "text/plain; version=0.0.4; charset=utf-8") ]
    200 (Metrics.render t.reg)

let routes t : Router.t =
  [
    ("POST", "/analyze", handle_analyze t);
    ("POST", "/sanitize", handle_sanitize t);
    ("POST", "/fuzz", handle_fuzz t);
    ("GET", "/healthz", handle_healthz t);
    ("GET", "/metrics", handle_metrics t);
    ("GET", "/findings", handle_findings t);
  ]

let known_endpoints =
  [ "/analyze"; "/sanitize"; "/fuzz"; "/healthz"; "/metrics"; "/findings" ]

let endpoint_label path =
  if List.mem path known_endpoints then path else "other"

(* ---------- the connection loop ---------- *)

let write_all fd (s : string) =
  let n = String.length s in
  let sent = ref 0 in
  (try
     while !sent < n do
       sent := !sent + Unix.write_substring fd s !sent (n - !sent)
     done
   with Unix.Unix_error _ -> () (* peer went away; nothing to salvage *))

(* 503 from the token bucket: same shape as the queue-full answer so
   clients retry the same way, Retry-After rounded up to whole seconds. *)
let ratelimited_response t ~wait =
  Metrics.inc t.m_ratelimited [];
  let after = max 1 (int_of_float (Float.ceil wait)) in
  Http.error_response 503
    ~headers:[ ("retry-after", string_of_int after) ]
    "rate limit exceeded; retry shortly"

(* Analysis traffic (POSTs) pays the per-client token bucket; reads —
   health probes, metric scrapes, feed tails — stay free so operators
   can always see a server that is busy saying 503. *)
let admit t ~peer (rq : Http.request) : Http.response option =
  match t.limiter with
  | None -> None
  | Some _ when rq.Http.rq_meth <> "POST" -> None
  | Some limiter -> (
      match Ratelimit.check limiter peer with
      | Ratelimit.Admit -> None
      | Ratelimit.Limit wait -> Some (ratelimited_response t ~wait))

let handle_connection t fd ~peer =
  let rd = Http.reader_of_fd fd in
  let send = write_all fd in
  let idle_wait () =
    match Unix.select [ fd ] [] [] t.cfg.idle_timeout with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
    | exception Unix.Unix_error _ -> false
  in
  let handler rq =
    let started = Unix.gettimeofday () in
    let resp =
      match admit t ~peer rq with
      | Some limited -> limited
      | None -> (
          try Router.dispatch (routes t) rq with
          | Http.Error (status, msg) -> Http.error_response status msg
          | e -> Http.error_response 500 (Printexc.to_string e))
    in
    let label = endpoint_label rq.Http.rq_path in
    Metrics.inc t.m_requests [ label; string_of_int resp.Http.rs_status ];
    Metrics.observe t.m_request_seconds ~labels:[ label ]
      (Unix.gettimeofday () -. started);
    if not t.cfg.quiet then
      Printf.eprintf "fpgrind serve: %s %s -> %d\n%!" rq.Http.rq_meth
        rq.Http.rq_path resp.Http.rs_status;
    resp
  in
  let on_error status =
    Metrics.inc t.m_requests [ "other"; string_of_int status ]
  in
  Http.session ~max_requests:t.cfg.keep_alive_requests
    ~max_body:t.cfg.max_body ~idle_wait ~on_error rd ~write:send ~handler;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let conn_begin t =
  Mutex.lock t.conn_mu;
  t.conns <- t.conns + 1;
  Mutex.unlock t.conn_mu

let conn_end t =
  Mutex.lock t.conn_mu;
  t.conns <- t.conns - 1;
  Condition.broadcast t.conn_cond;
  Mutex.unlock t.conn_mu

(* ---------- lifecycle ---------- *)

let stop t =
  Atomic.set t.stop_flag true;
  (* nudge the accept loop out of select *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1) with Unix.Unix_error _ -> ()

let flush_store t =
  match t.cfg.store_path with
  | None -> ()
  | Some path ->
      Mutex.lock t.cache_mu;
      let outcomes = List.rev t.persisted in
      Mutex.unlock t.cache_mu;
      Fleet.Store.save path outcomes

(* Serve until [stop] (or a signal handler calling it) fires, then shut
   down gracefully: close the listener, let open connections finish
   (their queued jobs run to completion), drain the pool, flush the
   store. Returns when fully drained. *)
let run t =
  let rec accept_loop () =
    if not (Atomic.get t.stop_flag) then begin
      (match Unix.select [ t.listen_fd; t.wake_r ] [] [] 1.0 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
          if List.mem t.listen_fd ready then begin
            match Unix.accept t.listen_fd with
            | fd, addr ->
                (* the listener is non-blocking (shared-socket accept
                   races between shards); the connection must not be *)
                (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
                let peer =
                  match addr with
                  | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
                  | Unix.ADDR_UNIX s -> s
                in
                conn_begin t;
                ignore
                  (Thread.create
                     (fun fd ->
                       Fun.protect
                         ~finally:(fun () -> conn_end t)
                         (fun () ->
                           try handle_connection t fd ~peer with _ -> ()))
                     fd)
            | exception Unix.Unix_error _ -> ()
          end);
      accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conn_mu;
  while t.conns > 0 do
    Condition.wait t.conn_cond t.conn_mu
  done;
  Mutex.unlock t.conn_mu;
  Fleet.Pool.drain t.pool;
  flush_store t;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  Fleet.clear_observer ();
  if not t.cfg.quiet then
    Printf.eprintf "fpgrind serve: drained, store flushed, exiting\n%!"
