(* The cross-shard shared result cache: a single append-only JSONL file
   (the same record format as Fleet.Store, so `fpgrind validate` reads
   it directly) that every shard of a pre-forked server publishes fresh
   outcomes to and polls for its siblings' results.

   Write protocol: open O_APPEND, take an exclusive advisory lock
   (Unix.lockf over the whole file), write the record as one line, close
   (which releases the lock). The lock serializes concurrent appends
   across processes; O_APPEND makes the common case a single atomic
   write even without it.

   Read protocol: no lock. [refresh] tails the file from the last
   consumed offset and indexes every *complete* line (ending in '\n') by
   its content-hash key. A torn trailing line — a shard SIGKILLed
   mid-write — is left unconsumed until more bytes arrive; if a later
   append runs into it the merged line fails to parse and is skipped,
   counted in [torn]. Losing the victim's one record is the contract:
   a killed shard loses at most its in-flight work. *)

type t = {
  path : string;
  mu : Mutex.t;
  tbl : (string, Fleet.outcome) Hashtbl.t;
  mutable off : int;  (* first byte of the file not yet consumed *)
  mutable torn : int;  (* unparseable complete lines skipped *)
}

let create (path : string) : t =
  {
    path;
    mu = Mutex.create ();
    tbl = Hashtbl.create 97;
    off = 0;
    torn = 0;
  }

(* Consume complete lines appended since the last refresh. Caller holds
   [t.mu]. *)
let refresh_locked (t : t) : unit =
  match Unix.openfile t.path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* not created yet *)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          if size > t.off then begin
            ignore (Unix.lseek fd t.off Unix.SEEK_SET);
            let n = size - t.off in
            let buf = Bytes.create n in
            let got = ref 0 in
            (try
               while !got < n do
                 let k = Unix.read fd buf !got (n - !got) in
                 if k = 0 then raise Exit else got := !got + k
               done
             with Exit -> ());
            let s = Bytes.sub_string buf 0 !got in
            (* consume only up to the last newline; a torn tail waits *)
            match String.rindex_opt s '\n' with
            | None -> ()
            | Some last ->
                String.split_on_char '\n' (String.sub s 0 last)
                |> List.iter (fun line ->
                       if String.trim line <> "" then
                         match Fleet.Json.of_string line with
                         | j -> (
                             let o = Fleet.Store.outcome_of_json j in
                             match o.Fleet.o_status with
                             | (Fleet.Done | Fleet.Cached)
                               when o.Fleet.o_key <> "" ->
                                 Hashtbl.replace t.tbl o.Fleet.o_key o
                             | _ -> ())
                         | exception _ -> t.torn <- t.torn + 1);
                t.off <- t.off + last + 1
          end)

let lookup (t : t) (key : string) : Fleet.outcome option =
  if key = "" then None
  else begin
    Mutex.lock t.mu;
    let o =
      match Hashtbl.find_opt t.tbl key with
      | Some _ as hit -> hit
      | None ->
          refresh_locked t;
          Hashtbl.find_opt t.tbl key
    in
    Mutex.unlock t.mu;
    o
  end

(* Publish a fresh outcome for the other shards. Only completed results
   with a content-hash key are worth sharing (and only those keep the
   file `fpgrind validate`-clean). *)
let publish (t : t) (o : Fleet.outcome) : unit =
  match o.Fleet.o_status with
  | Fleet.Done when o.Fleet.o_key <> "" ->
      let line =
        Fleet.Json.to_string (Fleet.Store.outcome_to_json o) ^ "\n"
      in
      let fd =
        Unix.openfile t.path
          [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
          0o644
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (try Unix.lockf fd Unix.F_LOCK 0 with Unix.Unix_error _ -> ());
          let n = String.length line in
          let sent = ref 0 in
          while !sent < n do
            sent := !sent + Unix.write_substring fd line !sent (n - !sent)
          done);
      Mutex.lock t.mu;
      Hashtbl.replace t.tbl o.Fleet.o_key o;
      Mutex.unlock t.mu
  | _ -> ()

let torn_total (t : t) : int =
  Mutex.lock t.mu;
  let n = t.torn in
  Mutex.unlock t.mu;
  n
