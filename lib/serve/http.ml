(* fpgrind.serve HTTP: a hand-rolled HTTP/1.1 request parser and response
   writer over a pluggable byte source (same no-external-deps discipline
   as lib/fleet/json.ml). The reader abstraction exists so the parser is
   testable without a live socket: tests feed it strings, the server
   feeds it a file descriptor.

   Scope: exactly what the analysis service needs. HTTP/1.1 keep-alive
   with pipelined request reads ([session] serves a whole connection off
   one buffered reader, so a second request that arrived in the same TCP
   segment is parsed without touching the socket again), Content-Length
   bodies only — Transfer-Encoding is refused with 501 — and hard limits
   on line length, header count, body size, per-connection request count
   and idle time so a hostile peer cannot make the server buffer
   unboundedly or pin a thread forever. *)

exception Error of int * string
(** An HTTP-level protocol error: status code to answer with, and why. *)

exception Closed
(** The peer closed the connection before sending a full request line. *)

let fail status msg = raise (Error (status, msg))

type request = {
  rq_meth : string;  (* uppercase token, e.g. "POST" *)
  rq_path : string;  (* target path, percent-decoded, without the query *)
  rq_query : (string * string) list;  (* decoded key/value pairs *)
  rq_headers : (string * string) list;  (* names lowercased, values trimmed *)
  rq_body : string;
  rq_version : string;  (* "HTTP/1.1" or "HTTP/1.0" *)
}

type response = {
  rs_status : int;
  rs_headers : (string * string) list;
  rs_body : string;
}

(* ---------- limits ---------- *)

let max_line = 8192  (* request line and each header line *)
let max_headers = 128
let default_max_body = 1 lsl 20  (* 1 MiB *)

(* ---------- buffered reader ---------- *)

type reader = {
  fill : bytes -> int -> int -> int;  (* like [Unix.read]; 0 = EOF *)
  chunk : Bytes.t;
  mutable pos : int;
  mutable len : int;
  mutable eof : bool;
}

let reader_of_fill fill =
  { fill; chunk = Bytes.create 4096; pos = 0; len = 0; eof = false }

let reader_of_fd fd = reader_of_fill (fun b o l -> Unix.read fd b o l)

(* [chunk] bounds how many bytes each fill returns, to exercise refill
   boundaries in tests (default: all at once). *)
let reader_of_string ?(chunk = max_int) s =
  let off = ref 0 in
  reader_of_fill (fun b o l ->
      let n = min (min l chunk) (String.length s - !off) in
      Bytes.blit_string s !off b o n;
      off := !off + n;
      n)

let refill rd =
  if (not rd.eof) && rd.pos >= rd.len then begin
    rd.pos <- 0;
    rd.len <-
      (try rd.fill rd.chunk 0 (Bytes.length rd.chunk)
       with Unix.Unix_error _ -> 0 (* peer reset: treat as EOF *));
    if rd.len <= 0 then begin
      rd.eof <- true;
      rd.len <- 0
    end
  end

let next_byte rd =
  refill rd;
  if rd.eof then -1
  else begin
    let c = Bytes.get rd.chunk rd.pos in
    rd.pos <- rd.pos + 1;
    Char.code c
  end

(* A CRLF- (or bare-LF-) terminated line. [at_start] distinguishes a
   clean pre-request close (Closed) from a mid-request truncation (400).
   [over] is the status for an over-long line: 414 for the request line,
   431 for headers. *)
let read_line ~over ~at_start rd : string =
  let buf = Buffer.create 64 in
  let rec go () =
    match next_byte rd with
    | -1 ->
        if at_start && Buffer.length buf = 0 then raise Closed
        else fail 400 "unexpected end of request"
    | 10 (* '\n' *) ->
        let s = Buffer.contents buf in
        let n = String.length s in
        if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
    | c ->
        if Buffer.length buf >= max_line then fail over "line too long";
        Buffer.add_char buf (Char.chr c);
        go ()
  in
  go ()

let read_exact rd n : string =
  let out = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    refill rd;
    if rd.eof then fail 400 "request body shorter than content-length";
    let k = min (rd.len - rd.pos) (n - !got) in
    Bytes.blit rd.chunk rd.pos out !got k;
    rd.pos <- rd.pos + k;
    got := !got + k
  done;
  Bytes.unsafe_to_string out

(* ---------- percent coding ---------- *)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail 400 "bad percent-escape"

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then fail 400 "bad percent-escape";
        Buffer.add_char buf
          (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
        i := !i + 2
    | '+' -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' | '~' ->
          Buffer.add_char buf c
      | c -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents buf

let parse_query qs : (string * string) list =
  String.split_on_char '&' qs
  |> List.filter_map (fun pair ->
         if pair = "" then None
         else
           match String.index_opt pair '=' with
           | None -> Some (percent_decode pair, "")
           | Some i ->
               Some
                 ( percent_decode (String.sub pair 0 i),
                   percent_decode
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

(* ---------- request parsing ---------- *)

let is_token_char c =
  (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
  || String.contains "!#$%&'*+-.^_`|~" c

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
      if not (String.for_all is_token_char meth) then
        fail 400 "malformed method";
      if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        if String.length version >= 5 && String.sub version 0 5 = "HTTP/" then
          fail 505 ("unsupported protocol version " ^ version)
        else fail 400 "malformed request line";
      if target.[0] <> '/' then fail 400 "request target must be absolute";
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
      in
      (String.uppercase_ascii meth, percent_decode path, query, version)
  | _ -> fail 400 "malformed request line"

let trim_ows s =
  let is_ows c = c = ' ' || c = '\t' in
  let n = String.length s in
  let i = ref 0 and j = ref n in
  while !i < n && is_ows s.[!i] do incr i done;
  while !j > !i && is_ows s.[!j - 1] do decr j done;
  String.sub s !i (!j - !i)

let parse_header_line line =
  match String.index_opt line ':' with
  | None | Some 0 -> fail 400 ("malformed header line: " ^ line)
  | Some i ->
      let name = String.sub line 0 i in
      if not (String.for_all is_token_char name) then
        fail 400 ("malformed header name: " ^ name);
      ( String.lowercase_ascii name,
        trim_ows (String.sub line (i + 1) (String.length line - i - 1)) )

let read_headers rd : (string * string) list =
  let rec go n acc =
    let line = read_line ~over:431 ~at_start:false rd in
    if line = "" then List.rev acc
    else if n >= max_headers then fail 431 "too many header fields"
    else go (n + 1) (parse_header_line line :: acc)
  in
  go 0 []

let content_length_of headers ~max_body =
  let cls =
    List.filter_map (fun (k, v) -> if k = "content-length" then Some v else None)
      headers
  in
  match List.sort_uniq compare cls with
  | [] -> None
  | [ v ] ->
      if v = "" || not (String.for_all (fun c -> c >= '0' && c <= '9') v) then
        fail 400 ("malformed content-length: " ^ v);
      let n =
        match int_of_string_opt v with
        | Some n -> n
        | None -> fail 400 ("malformed content-length: " ^ v)
      in
      if n > max_body then
        fail 413 (Printf.sprintf "body of %d bytes exceeds limit %d" n max_body);
      Some n
  | _ :: _ :: _ -> fail 400 "conflicting content-length headers"

let read_request ?(max_body = default_max_body) (rd : reader) : request =
  let line = read_line ~over:414 ~at_start:true rd in
  let meth, path, query, version = parse_request_line line in
  let headers = read_headers rd in
  if List.mem_assoc "transfer-encoding" headers then
    fail 501 "transfer-encoding is not supported; send content-length";
  let body =
    match content_length_of headers ~max_body with
    | Some n -> read_exact rd n
    | None ->
        if meth = "POST" || meth = "PUT" then
          fail 411 "content-length required"
        else ""
  in
  { rq_meth = meth; rq_path = path; rq_query = query; rq_headers = headers;
    rq_body = body; rq_version = version }

let header req name = List.assoc_opt (String.lowercase_ascii name) req.rq_headers

(* ---------- keep-alive ---------- *)

(* Does this request forbid reusing the connection? A Connection header
   is a comma-separated token list; "close" anywhere in it wins. An
   HTTP/1.0 peer must opt in with "keep-alive" explicitly. *)
let want_close (rq : request) : bool =
  let tokens =
    match header rq "connection" with
    | None -> []
    | Some v ->
        String.split_on_char ',' v
        |> List.map (fun s -> String.lowercase_ascii (trim_ows s))
  in
  if List.mem "close" tokens then true
  else if rq.rq_version = "HTTP/1.0" then not (List.mem "keep-alive" tokens)
  else false

(* Unconsumed bytes already sitting in the reader's buffer — a pipelined
   next request that must be served before waiting on the byte source. *)
let buffered (rd : reader) : bool = rd.pos < rd.len

(* ---------- responses ---------- *)

let status_text = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 411 -> "Length Required"
  | 413 -> "Payload Too Large"
  | 414 -> "URI Too Long"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Status"

let response ?(headers = []) status body =
  { rs_status = status; rs_headers = headers; rs_body = body }

let text_response ?(headers = []) status body =
  response ~headers:(("content-type", "text/plain; charset=utf-8") :: headers)
    status body

let json_response ?(headers = []) status (j : Fleet.Json.t) =
  response ~headers:(("content-type", "application/json") :: headers)
    status
    (Fleet.Json.to_string j ^ "\n")

let error_response ?headers status msg =
  json_response ?headers status (Fleet.Json.Obj [ ("error", Fleet.Json.Str msg) ])

let response_string ?(keep_alive = false) (r : response) : string =
  let buf = Buffer.create (256 + String.length r.rs_body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.rs_status (status_text r.rs_status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.rs_headers;
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length r.rs_body));
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n\r\n"
     else "connection: close\r\n\r\n");
  Buffer.add_string buf r.rs_body;
  Buffer.contents buf

let write_response ?keep_alive (write : string -> unit) (r : response) =
  write (response_string ?keep_alive r)

(* ---------- the connection session ---------- *)

(* Serve one connection: a loop of read-request / dispatch / write-
   response over a single buffered reader, so pipelined requests already
   in the buffer are served back to back. The loop ends when

   - the handler's request said Connection: close (or was HTTP/1.0
     without keep-alive) — the response says "connection: close";
   - [max_requests] responses have been written — the last one also says
     "connection: close";
   - the peer goes quiet: with nothing buffered, [idle_wait] decides
     whether bytes are worth waiting for (the server points it at
     select-with-timeout; [false] tears the connection down silently);
   - the peer closes before a request line ([Closed]); or
   - the stream breaks mid-request ([Error]): after a 413 or a malformed
     frame the body's framing is unknowable, so the error response is
     written with "connection: close" and the session ends. [on_error]
     sees the status for accounting.

   Pure function of the reader + callbacks — the tests drive it with
   string readers and a Buffer writer, no sockets involved. *)
let session ?(max_requests = max_int) ?(max_body = default_max_body)
    ?(idle_wait = fun () -> true) ?(on_error = fun (_ : int) -> ())
    (rd : reader) ~(write : string -> unit)
    ~(handler : request -> response) : unit =
  let rec go served =
    if served >= max_requests then ()
    else if (not (buffered rd)) && rd.eof then ()
    else if (not (buffered rd)) && not (idle_wait ()) then ()
    else
      match read_request ~max_body rd with
      | rq ->
          let resp = handler rq in
          let keep = (not (want_close rq)) && served + 1 < max_requests in
          write (response_string ~keep_alive:keep resp);
          if keep then go (served + 1)
      | exception Closed -> ()
      | exception Error (status, msg) ->
          on_error status;
          write (response_string ~keep_alive:false (error_response status msg))
  in
  go 0

(* ---------- response parsing (for the client) ---------- *)

let read_response (rd : reader) : int * (string * string) list * string =
  let line = read_line ~over:414 ~at_start:true rd in
  let status =
    match String.split_on_char ' ' line with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> fail 400 ("malformed status line: " ^ line))
    | _ -> fail 400 ("malformed status line: " ^ line)
  in
  let headers = read_headers rd in
  let body =
    match content_length_of headers ~max_body:max_int with
    | Some n -> read_exact rd n
    | None ->
        (* connection: close delimits the body *)
        let buf = Buffer.create 256 in
        let rec go () =
          match next_byte rd with
          | -1 -> Buffer.contents buf
          | c ->
              Buffer.add_char buf (Char.chr c);
              go ()
        in
        go ()
  in
  (status, headers, body)
