(* fpgrind.serve — public face of the network analysis service.

   [Serve.Server] is the HTTP/1.1 service: keep-alive connections with
   pipelined reads, bounded job queue with 503 backpressure, Fleet.Pool
   dispatch, content-hash result cache, JSONL store flush, graceful
   drain. [Serve.Http] is the dependency-free request parser / response
   writer and per-connection session loop (testable without sockets);
   [Serve.Router] dispatches and types query parameters; [Serve.Metrics]
   is the Prometheus-format counter/gauge/histogram layer;
   [Serve.Cachefile] is the advisory-locked cross-shard result cache;
   [Serve.Ratelimit] the per-client token buckets; [Serve.Client] the
   small blocking client (one-shot and keep-alive) behind `fpgrind
   client`, `fpgrind loadgen`, and the tests. *)

module Http = Http
module Router = Router
module Metrics = Metrics
module Server = Server
module Client = Client
module Cachefile = Cachefile
module Ratelimit = Ratelimit
