(* fpgrind.serve — public face of the network analysis service.

   [Serve.Server] is the HTTP/1.1 service: bounded job queue with 503
   backpressure, Fleet.Pool dispatch, content-hash result cache, JSONL
   store flush, graceful drain. [Serve.Http] is the dependency-free
   request parser / response writer (testable without sockets);
   [Serve.Router] dispatches and types query parameters; [Serve.Metrics]
   is the Prometheus-format counter/gauge/histogram layer; [Serve.Client]
   is the small blocking client behind `fpgrind client` and the tests. *)

module Http = Http
module Router = Router
module Metrics = Metrics
module Server = Server
module Client = Client
