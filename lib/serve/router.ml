(* fpgrind.serve routing: exact method+path dispatch over a static route
   table, plus typed query-parameter accessors that turn malformed values
   into 400s instead of exceptions. *)

type handler = Http.request -> Http.response
type t = (string * string * handler) list  (* method, path, handler *)

let dispatch (routes : t) (rq : Http.request) : Http.response =
  match
    List.find_opt (fun (m, p, _) -> m = rq.Http.rq_meth && p = rq.Http.rq_path)
      routes
  with
  | Some (_, _, h) -> h rq
  | None -> (
      match
        List.filter_map
          (fun (m, p, _) -> if p = rq.Http.rq_path then Some m else None)
          routes
      with
      | [] -> Http.error_response 404 ("no such endpoint: " ^ rq.Http.rq_path)
      | allowed ->
          Http.error_response 405
            ~headers:[ ("allow", String.concat ", " allowed) ]
            (Printf.sprintf "%s does not accept %s" rq.Http.rq_path
               rq.Http.rq_meth))

(* ---------- query parameters ---------- *)

let q_opt (rq : Http.request) name = List.assoc_opt name rq.Http.rq_query

let q_str rq name ~default =
  match q_opt rq name with Some v -> v | None -> default

let q_int rq name ~default =
  match q_opt rq name with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> Http.fail 400 (Printf.sprintf "query %s: not an integer: %s" name v))

let q_float_opt rq name =
  match q_opt rq name with
  | None -> None
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Some f
      | None -> Http.fail 400 (Printf.sprintf "query %s: not a number: %s" name v))

let q_float rq name ~default =
  match q_float_opt rq name with Some f -> f | None -> default

(* a comma-separated float list, e.g. inputs=1.5,2.5 *)
let q_floats rq name ~default =
  match q_opt rq name with
  | None -> default
  | Some "" -> default
  | Some v ->
      String.split_on_char ',' v
      |> List.map (fun s ->
             match float_of_string_opt (String.trim s) with
             | Some f -> f
             | None ->
                 Http.fail 400
                   (Printf.sprintf "query %s: not a number: %s" name s))
