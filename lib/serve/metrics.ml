(* fpgrind.serve metrics: counters, gauges, and histograms with
   Prometheus text-format rendering. Dependency-free, like the rest of
   the subsystem: the exposition format is a few lines of printf, so a
   small faithful implementation beats a client-library package.

   Thread- and domain-safe: every mutation and the render pass take the
   registry mutex — updates come from connection threads and from Fleet
   worker domains (via the engine observer), scrapes from whichever
   connection thread serves GET /metrics. *)

type kind = Counter | Gauge | Histogram of float array (* ascending bounds *)

type series = {
  mutable sr_value : float;  (* counter/gauge value; histogram sum *)
  mutable sr_count : float;  (* histogram observation count *)
  sr_buckets : float array;  (* per-bucket (non-cumulative) counts *)
}

type family = {
  fam_name : string;
  fam_help : string;
  fam_kind : kind;
  fam_labels : string list;  (* label names; [] for unlabeled metrics *)
  fam_series : (string list, series) Hashtbl.t;  (* keyed by label values *)
}

type t = { mu : Mutex.t; mutable fams : family list (* reverse order *) }

type counter = { c_reg : t; c_fam : family }
type gauge = { g_reg : t; g_fam : family }
type histogram = { h_reg : t; h_fam : family }

let create () = { mu = Mutex.create (); fams = [] }

let valid_name n =
  n <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       n
  && not (n.[0] >= '0' && n.[0] <= '9')

let register reg ~name ~help ~labels kind : family =
  if not (valid_name name) then invalid_arg ("Metrics: bad metric name " ^ name);
  List.iter
    (fun l ->
      if not (valid_name l) then invalid_arg ("Metrics: bad label name " ^ l))
    labels;
  Mutex.lock reg.mu;
  if List.exists (fun f -> f.fam_name = name) reg.fams then begin
    Mutex.unlock reg.mu;
    invalid_arg ("Metrics: duplicate metric " ^ name)
  end;
  let fam =
    {
      fam_name = name;
      fam_help = help;
      fam_kind = kind;
      fam_labels = labels;
      fam_series = Hashtbl.create 7;
    }
  in
  reg.fams <- fam :: reg.fams;
  Mutex.unlock reg.mu;
  fam

(* must hold the registry mutex *)
let series_of fam (label_values : string list) : series =
  match Hashtbl.find_opt fam.fam_series label_values with
  | Some s -> s
  | None ->
      if List.length label_values <> List.length fam.fam_labels then
        invalid_arg
          (Printf.sprintf "Metrics: %s expects %d label values, got %d"
             fam.fam_name
             (List.length fam.fam_labels)
             (List.length label_values));
      let nb =
        match fam.fam_kind with Histogram b -> Array.length b | _ -> 0
      in
      let s = { sr_value = 0.0; sr_count = 0.0; sr_buckets = Array.make nb 0.0 } in
      Hashtbl.replace fam.fam_series label_values s;
      s

(* ---------- the three metric types ---------- *)

let counter reg ?(labels = []) ~help name : counter =
  let c = { c_reg = reg; c_fam = register reg ~name ~help ~labels Counter } in
  (* unlabeled counters render as 0 from the start, so a scrape sees
     every metric the server exports even before the first event *)
  if labels = [] then begin
    Mutex.lock reg.mu;
    ignore (series_of c.c_fam []);
    Mutex.unlock reg.mu
  end;
  c

let inc ?(by = 1.0) (c : counter) (label_values : string list) =
  if by < 0.0 then invalid_arg "Metrics.inc: counters only go up";
  Mutex.lock c.c_reg.mu;
  let s = series_of c.c_fam label_values in
  s.sr_value <- s.sr_value +. by;
  Mutex.unlock c.c_reg.mu

let counter_value (c : counter) (label_values : string list) : float =
  Mutex.lock c.c_reg.mu;
  let v =
    match Hashtbl.find_opt c.c_fam.fam_series label_values with
    | Some s -> s.sr_value
    | None -> 0.0
  in
  Mutex.unlock c.c_reg.mu;
  v

let gauge reg ~help name : gauge =
  let g = { g_reg = reg; g_fam = register reg ~name ~help ~labels:[] Gauge } in
  (* gauges always render, even before the first [set] *)
  Mutex.lock reg.mu;
  ignore (series_of g.g_fam []);
  Mutex.unlock reg.mu;
  g

let set (g : gauge) v =
  Mutex.lock g.g_reg.mu;
  (series_of g.g_fam []).sr_value <- v;
  Mutex.unlock g.g_reg.mu

let add (g : gauge) v =
  Mutex.lock g.g_reg.mu;
  let s = series_of g.g_fam [] in
  s.sr_value <- s.sr_value +. v;
  Mutex.unlock g.g_reg.mu

let default_buckets =
  [| 0.001; 0.005; 0.01; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 30.0 |]

let histogram reg ?(labels = []) ?(buckets = default_buckets) ~help name :
    histogram =
  let b = Array.copy buckets in
  Array.sort compare b;
  { h_reg = reg; h_fam = register reg ~name ~help ~labels (Histogram b) }

let observe (h : histogram) ?(labels = []) v =
  Mutex.lock h.h_reg.mu;
  let s = series_of h.h_fam labels in
  s.sr_count <- s.sr_count +. 1.0;
  s.sr_value <- s.sr_value +. v;
  (match h.h_fam.fam_kind with
  | Histogram bounds ->
      (* count lands in the first bucket whose bound covers it; render
         accumulates into the cumulative form Prometheus expects *)
      let rec place i =
        if i < Array.length bounds then
          if v <= bounds.(i) then s.sr_buckets.(i) <- s.sr_buckets.(i) +. 1.0
          else place (i + 1)
      in
      place 0
  | _ -> ());
  Mutex.unlock h.h_reg.mu

(* ---------- rendering ---------- *)

let fmt_num f =
  if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help h =
  String.concat "\\n" (String.split_on_char '\n' h)

let label_string names values =
  if names = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map2
           (fun n v -> Printf.sprintf "%s=\"%s\"" n (escape_label_value v))
           names values)
    ^ "}"

(* like [label_string] but with an extra le="..." pair for buckets *)
let bucket_label_string names values le =
  let pairs =
    List.map2
      (fun n v -> Printf.sprintf "%s=\"%s\"" n (escape_label_value v))
      names values
    @ [ Printf.sprintf "le=\"%s\"" le ]
  in
  "{" ^ String.concat "," pairs ^ "}"

let render (reg : t) : string =
  let buf = Buffer.create 1024 in
  Mutex.lock reg.mu;
  List.iter
    (fun fam ->
      let kind_name =
        match fam.fam_kind with
        | Counter -> "counter"
        | Gauge -> "gauge"
        | Histogram _ -> "histogram"
      in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" fam.fam_name (escape_help fam.fam_help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" fam.fam_name kind_name);
      let rows =
        Hashtbl.fold (fun lv s acc -> (lv, s) :: acc) fam.fam_series []
        |> List.sort compare
      in
      List.iter
        (fun (lv, s) ->
          match fam.fam_kind with
          | Counter | Gauge ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" fam.fam_name
                   (label_string fam.fam_labels lv)
                   (fmt_num s.sr_value))
          | Histogram bounds ->
              let cumulative = ref 0.0 in
              Array.iteri
                (fun i bound ->
                  cumulative := !cumulative +. s.sr_buckets.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %s\n" fam.fam_name
                       (bucket_label_string fam.fam_labels lv
                          (Printf.sprintf "%g" bound))
                       (fmt_num !cumulative)))
                bounds;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %s\n" fam.fam_name
                   (bucket_label_string fam.fam_labels lv "+Inf")
                   (fmt_num s.sr_count));
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" fam.fam_name
                   (label_string fam.fam_labels lv)
                   (fmt_num s.sr_value));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %s\n" fam.fam_name
                   (label_string fam.fam_labels lv)
                   (fmt_num s.sr_count)))
        rows)
    (List.rev reg.fams);
  Mutex.unlock reg.mu;
  Buffer.contents buf
