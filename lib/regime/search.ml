(* The regime search: given K candidate expressions scored per point,
   partition the sampled input space along single-variable thresholds so
   each segment runs its locally-best candidate — Herbie's regime
   inference, reconstructed over the improver's beam.

   For every variable the points are sorted by that variable's value and
   a dynamic program over the sorted order finds, for each branch count
   k ≤ max_regimes, the least-total-error segmentation (segment cost =
   the best single candidate's summed error bits over the segment;
   boundaries fall only between points with distinct values). Branching
   is charged an MDL-style penalty — [penalty_bits] per context point
   per extra regime — so a branch must buy at least that much *mean*
   accuracy to exist at all; with no such split the search returns
   [None] and the caller keeps the single best candidate. Everything is
   deterministic: ties prefer fewer regimes, then earlier variables,
   then lower candidate indices.

   Thresholds start as midpoints of the straddling sample values and are
   tightened by binary search ([refine]): each probe interpolates the
   split variable between the two straddling points, re-scores the two
   adjacent candidates on both probe assignments, and moves the bracket
   toward the winner flip — the sorted per-point best-candidate table
   only localizes the flip to a gap; the probes localize it inside. *)

type split = {
  s_var : string;
  s_thresholds : float list;  (* ascending; length = segments - 1 *)
  s_cands : int list;  (* candidate index per segment, low range first *)
  s_cost : float;  (* summed predicted error bits over the context *)
}

type options = {
  max_regimes : int;
  penalty_bits : float;  (* MDL charge per point per extra regime *)
  refine_iters : int;  (* binary-search probes per threshold *)
}

let default_options = { max_regimes = 3; penalty_bits = 0.5; refine_iters = 8 }

(* cost of covering every point with one candidate *)
let single_cost (errors : float array array) : float * int =
  let n = Array.length errors.(0) in
  let best = ref infinity and who = ref 0 in
  Array.iteri
    (fun c row ->
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        s := !s +. row.(j)
      done;
      if !s < !best then begin
        best := !s;
        who := c
      end)
    errors;
  (!best, !who)

let search ?(opts = default_options) ~(vars : (string * float array) list)
    ~(errors : float array array) () : split option =
  let k_cands = Array.length errors in
  if k_cands = 0 then None
  else begin
    let n = Array.length errors.(0) in
    let cost1, _ = single_cost errors in
    let penalty = opts.penalty_bits *. float_of_int n in
    let best : (float * int * split) option ref = ref None in
    (* (score, regime count, split); lower score wins, ties keep first *)
    List.iter
      (fun (var, xs) ->
        if Array.length xs = n && n >= 2 then begin
          let order = Array.init n (fun i -> i) in
          Array.sort
            (fun a b ->
              match compare xs.(a) xs.(b) with 0 -> compare a b | c -> c)
            order;
          (* prefix.(c).(i): candidate c's error summed over the first i
             sorted points *)
          let prefix =
            Array.init k_cands (fun c ->
                let p = Array.make (n + 1) 0.0 in
                for i = 0 to n - 1 do
                  p.(i + 1) <- p.(i) +. errors.(c).(order.(i))
                done;
                p)
          in
          let seg_cost a b =
            let best = ref infinity and who = ref 0 in
            for c = 0 to k_cands - 1 do
              let s = prefix.(c).(b) -. prefix.(c).(a) in
              if s < !best then begin
                best := s;
                who := c
              end
            done;
            (!best, !who)
          in
          let can_cut = Array.make (n + 1) false in
          for i = 1 to n - 1 do
            can_cut.(i) <- xs.(order.(i - 1)) < xs.(order.(i))
          done;
          (* dp.(k-1).(i): best cost covering sorted points [0, i) with k
             segments; choice.(k-1).(i): where the last segment starts *)
          let kmax = max 1 opts.max_regimes in
          let dp = Array.make_matrix kmax (n + 1) infinity in
          let choice = Array.make_matrix kmax (n + 1) 0 in
          for i = 1 to n do
            let c, w = seg_cost 0 i in
            dp.(0).(i) <- c;
            choice.(0).(i) <- w
          done;
          for k = 1 to kmax - 1 do
            for i = 1 to n do
              for b = 1 to i - 1 do
                if can_cut.(b) && dp.(k - 1).(b) < infinity then begin
                  let c, _ = seg_cost b i in
                  let total = dp.(k - 1).(b) +. c in
                  if total < dp.(k).(i) then begin
                    dp.(k).(i) <- total;
                    choice.(k).(i) <- b
                  end
                end
              done
            done
          done;
          for k = 2 to kmax do
            let cost = dp.(k - 1).(n) in
            let score = cost +. (penalty *. float_of_int (k - 1)) in
            if cost < infinity && score < cost1 then begin
              (* reconstruct segment boundaries right to left *)
              let bounds = ref [] and i = ref n in
              for kk = k - 1 downto 1 do
                let b = choice.(kk).(!i) in
                bounds := b :: !bounds;
                i := b
              done;
              let cuts = !bounds in
              let segs =
                let rec go a = function
                  | [] -> [ (a, n) ]
                  | b :: rest -> (a, b) :: go b rest
                in
                go 0 cuts
              in
              let cands = List.map (fun (a, b) -> snd (seg_cost a b)) segs in
              (* a cut between equal candidates buys nothing: drop it *)
              let rec dedup cs ts =
                match (cs, ts) with
                | a :: b :: rest, t :: trest ->
                    if a = b then dedup (a :: rest) trest
                    else
                      let cs', ts' = dedup (b :: rest) trest in
                      (a :: cs', t :: ts')
                | cs, ts -> (cs, ts)
              in
              let thresholds =
                List.map
                  (fun b ->
                    (xs.(order.(b - 1)) +. xs.(order.(b))) /. 2.0)
                  cuts
              in
              let cands, thresholds = dedup cands thresholds in
              if List.length cands >= 2 then begin
                let s =
                  {
                    s_var = var;
                    s_thresholds = thresholds;
                    s_cands = cands;
                    s_cost = cost;
                  }
                in
                let better =
                  match !best with
                  | None -> true
                  | Some (sc, bk, _) ->
                      score < sc || (score = sc && List.length cands < bk)
                in
                if better then best := Some (score, List.length cands, s)
              end
            end
          done
        end)
      vars;
    match !best with Some (_, _, s) -> Some s | None -> None
  end

(* Binary-search threshold refinement. [eval c pt] scores candidate [c]
   at assignment [pt] (error bits; None = domain exit, scored as the
   worst case 64). Returns the refined split and the number of probe
   evaluations spent. *)
let refine ?(opts = default_options) ~(points : Sampler.t)
    ~(eval : int -> (string * float) list -> float option) (split : split) :
    split * int =
  let probes = ref 0 in
  let score c pt =
    incr probes;
    match eval c pt with Some e -> e | None -> 64.0
  in
  let value_of var pt = try List.assoc var pt with Not_found -> nan in
  let refined =
    List.mapi
      (fun i t ->
        let cl = List.nth split.s_cands i
        and cr = List.nth split.s_cands (i + 1) in
        (* the straddling sample points: nearest below and above t *)
        let below, above =
          List.fold_left
            (fun (lo, hi) pt ->
              let v = value_of split.s_var pt in
              let lo =
                if v <= t then
                  match lo with
                  | Some (lv, _) when lv >= v -> lo
                  | _ -> Some (v, pt)
                else lo
              in
              let hi =
                if v > t then
                  match hi with
                  | Some (hv, _) when hv <= v -> hi
                  | _ -> Some (v, pt)
                else hi
              in
              (lo, hi))
            (None, None) points
        in
        match (below, above) with
        | Some (lo, plo), Some (hi, phi) when lo < hi ->
            let lo = ref lo and hi = ref hi in
            for _ = 1 to opts.refine_iters do
              let m = (!lo +. !hi) /. 2.0 in
              if m > !lo && m < !hi then begin
                let at pt = (split.s_var, m) :: List.remove_assoc split.s_var pt in
                let el = score cl (at plo) +. score cl (at phi)
                and er = score cr (at plo) +. score cr (at phi) in
                if el <= er then lo := m else hi := m
              end
            done;
            (!lo +. !hi) /. 2.0
        | _ -> t)
      split.s_thresholds
  in
  ({ split with s_thresholds = refined }, !probes)
