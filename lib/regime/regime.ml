(* fpgrind.regime — public face of regime inference and branched-fix
   synthesis (Herbie-style branch synthesis over the improver's beam;
   ROADMAP item 1).

   [Regime.infer] runs the whole pipeline for one benchmark: sample a
   deterministic search context ([Sampler]), keep the beam search's full
   candidate set ([Rewrite.Improve.improve_candidates]), localize
   per-subexpression error ([Localize]), find the best single-variable
   branch structure under an MDL penalty ([Search]), emit a branched
   FPCore/MiniC fix ([Emit]), and re-validate it on a disjoint resampled
   context through [Rewrite.Soundness]. [Regime.table] renders the
   actual-vs-predicted error table; [Regime.to_json] the same as JSON. *)

include Infer
module Sampler = Sampler
module Localize = Localize
module Search = Search
module Emit = Emit
