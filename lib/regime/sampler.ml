(* The regime point-context sampler. A context is a list of named input
   assignments drawn from a benchmark's sampling ranges (the suite's
   stand-in for FPBench :pre preconditions), keyed purely by
   (bench, seed, n): it rides the suite's xorshift64* stream through
   [Fpcore.Suite.inputs_for], so the same seed always yields the
   byte-identical context — the property the campaign checkpoints, the
   soundiness oracle, and the regime tests all lean on.

   Two contexts matter everywhere in this library: the *search* context
   (seed s) that regimes are inferred on, and the *resample* context
   (seed [Rewrite.Soundness.resample_seed] s) that validates them. They
   come from disjoint streams by construction, so a branch structure
   that merely memorizes its search points is caught, not shipped. *)

module Suite = Fpcore.Suite

type t = Rewrite.Improve.sample list

(* disjoint-stream seed for the validation context (re-exported so
   callers need only one module) *)
let resample_seed = Rewrite.Soundness.resample_seed

let context ?(seed = 42) ~(n : int) (bench : Suite.bench) : t =
  Rewrite.Soundness.samples_of_bench ~seed ~n bench

(* Ad-hoc expressions (CLI `improve` on raw FPCore source) have no suite
   entry; a synthetic bench built from per-variable ranges reuses the
   identical sampling discipline. Positive ranges sample log-uniformly,
   matching the suite's convention for scale-spanning inputs. *)
let bench_of_ranges ~(name : string) ~(src : string)
    (ranges : (string * float * float) list) : Suite.bench =
  {
    Suite.name;
    group = `Straight;
    src;
    ranges =
      List.map
        (fun (v, lo, hi) ->
          (v, lo, hi, if lo > 0.0 && hi > 0.0 then Suite.Log else Suite.Linear))
        ranges;
  }

(* Canonical rendering of a context, used by determinism tests and
   anywhere a context must be compared byte-for-byte. %h is exact. *)
let fingerprint (ctx : t) : string =
  String.concat ";"
    (List.map
       (fun pt ->
         String.concat ","
           (List.map (fun (x, v) -> Printf.sprintf "%s=%h" x v) pt))
       ctx)
