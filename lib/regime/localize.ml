(* Per-point, per-subexpression local-error localization over the FPCore
   AST — the same notion of local error the core analysis computes per
   operation (float op applied to exactly-rounded exact arguments,
   against the exact op result), re-derived here on the report
   expression so the regime search and the error-table can attribute
   error to subexpressions of the *candidate* programs, which never
   existed in the analyzed binary.

   One walk per sampled point computes exact values bottom-up and
   records each operation's local error; a point where evaluation
   raises (domain exit, unknown constant) contributes nothing. Spots
   are keyed by their argument-index path from the root and reported in
   first-visit (pre-order) order, so the output is deterministic and
   pinnable. Loop bodies are out of scope: a [While] evaluates exactly
   as a whole and records no interior spots. *)

module Ast = Fpcore.Ast
module B = Bignum.Bigfloat

type spot = {
  sp_path : int list;  (* arg-index path from the root *)
  sp_expr : string;  (* FPCore rendering of the subexpression *)
  sp_mean : float;  (* mean local error, bits, over recording points *)
  sp_max : float;
  sp_points : int;  (* points where this operation evaluated *)
}

(* exact application of one operation, mirroring [Fpcore.Eval.eval_r] *)
let apply_r ~prec op (vals : B.t list) : B.t =
  match (op, vals) with
  | "-", [ a ] -> B.neg a
  | "+", [ a ] -> a
  | "+", a :: (_ :: _ as rest) -> List.fold_left (B.add ~prec) a rest
  | "-", [ a; b ] -> B.sub ~prec a b
  | "*", a :: (_ :: _ as rest) -> List.fold_left (B.mul ~prec) a rest
  | "/", [ a; b ] -> B.div ~prec a b
  | _ -> Vex.Eval.libm_apply_real ~prec op (Array.of_list vals)

(* float application of one operation to rounded exact arguments *)
let apply_f op (vals : float list) : float =
  match (op, vals) with
  | "-", [ a ] -> -.a
  | "+", [ a ] -> a
  | _ -> Fpcore.Eval.apply_f op vals

type acc = {
  mutable a_sum : float;
  mutable a_max : float;
  mutable a_count : int;
  a_expr : Ast.expr;
  a_order : int;  (* first-visit rank, for deterministic output *)
}

let local_errors ?(prec = 256) (e : Ast.expr) (ctx : Sampler.t) : spot list =
  let spots : (int list, acc) Hashtbl.t = Hashtbl.create 32 in
  let next_order = ref 0 in
  let record path expr err =
    let a =
      match Hashtbl.find_opt spots path with
      | Some a -> a
      | None ->
          let a =
            {
              a_sum = 0.0;
              a_max = 0.0;
              a_count = 0;
              a_expr = expr;
              a_order = !next_order;
            }
          in
          incr next_order;
          Hashtbl.replace spots path a;
          a
    in
    a.a_sum <- a.a_sum +. err;
    a.a_max <- Float.max a.a_max err;
    a.a_count <- a.a_count + 1
  in
  let rec walk renv path (e : Ast.expr) : B.t =
    match e with
    | Ast.Op (op, args) ->
        let vals = List.mapi (fun i a -> walk renv (i :: path) a) args in
        let r = apply_r ~prec op vals in
        (match apply_f op (List.map B.to_float vals) with
        | f -> record (List.rev path) e (Ieee.bits_of_error f (B.to_float r))
        | exception _ -> ());
        r
    | Ast.If (c, t, f) ->
        if Fpcore.Eval.eval_rb ~prec renv c then walk renv (0 :: path) t
        else walk renv (1 :: path) f
    | Ast.Let (binds, body) ->
        let vals =
          List.mapi (fun i (x, e) -> (x, walk renv (i :: path) e)) binds
        in
        walk (vals @ renv) (List.length binds :: path) body
    | Ast.LetStar (binds, body) ->
        let renv, _ =
          List.fold_left
            (fun (renv, i) (x, e) ->
              ((x, walk renv (i :: path) e) :: renv, i + 1))
            (renv, 0) binds
        in
        walk renv (List.length binds :: path) body
    | Ast.Num _ | Ast.Const _ | Ast.Var _
    | Ast.While _ | Ast.WhileStar _
    | Ast.Cmp _ | Ast.AndE _ | Ast.OrE _ | Ast.NotE _ ->
        Fpcore.Eval.eval_r ~prec renv e
  in
  List.iter
    (fun pt ->
      let renv = List.map (fun (x, v) -> (x, B.of_float v)) pt in
      try ignore (walk renv [] e) with _ -> ())
    ctx;
  Hashtbl.fold (fun path a acc -> (path, a) :: acc) spots []
  |> List.sort (fun (_, a) (_, b) -> compare a.a_order b.a_order)
  |> List.map (fun (path, a) ->
         {
           sp_path = path;
           sp_expr = Rewrite.Soundness.render_expr a.a_expr;
           sp_mean = (if a.a_count = 0 then 0.0 else a.a_sum /. float_of_int a.a_count);
           sp_max = a.a_max;
           sp_points = a.a_count;
         })

(* The subexpressions worth branching over: local error at or above the
   analysis's taint threshold ([Core.Config.error_threshold]) on at
   least one sampled point. *)
let above ?(threshold = Core.Config.default.Core.Config.error_threshold)
    (spots : spot list) : spot list =
  List.filter (fun s -> s.sp_max >= threshold) spots
