(* Emitters for branched fixes: FPCore `if` chains (which round-trip
   through [Fpcore.Parse]) and MiniC programs (which round-trip through
   [Minic.compile] and run under every engine, inputs via __arg). The
   FPCore renderer is [Rewrite.Soundness.render_expr], the same one the
   soundiness reports use, so rendering is one discipline repo-wide. *)

module Ast = Fpcore.Ast

exception Unsupported of string

(* the branched expression: candidates low-range-first over ascending
   thresholds of one variable *)
let if_chain ~(var : string) ~(thresholds : float list)
    ~(cands : Ast.expr list) : Ast.expr =
  let rec go ts cs =
    match (ts, cs) with
    | [], [ c ] -> c
    | t :: ts', c :: cs' ->
        Ast.If (Ast.Cmp ("<=", [ Ast.Var var; Ast.Num t ]), c, go ts' cs')
    | _ -> invalid_arg "Emit.if_chain: need one more candidate than thresholds"
  in
  go thresholds cands

let render_core ~(args : string list) (body : Ast.expr) : string =
  Printf.sprintf "(FPCore (%s) %s)" (String.concat " " args)
    (Rewrite.Soundness.render_expr body)

(* ---------- MiniC ---------- *)

(* a float literal MiniC's lexer reads back exactly: %.17g round-trips
   doubles, and a forced '.'/exponent keeps it a FLOAT_LIT *)
let c_lit (f : float) : string =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_finite f then begin
    let s = Printf.sprintf "%.17g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  end
  else raise (Unsupported "non-finite literal")

let c_const = function
  | "PI" -> c_lit (List.assoc "PI" Ast.constants)
  | "E" -> c_lit (List.assoc "E" Ast.constants)
  | c -> (
      match List.assoc_opt c Ast.constants with
      | Some v -> c_lit v
      | None -> raise (Unsupported ("constant " ^ c)))

let mathlib_fns =
  [
    "sqrt"; "exp"; "log"; "sin"; "cos"; "tan"; "atan"; "atan2"; "pow";
    "asin"; "acos"; "sinh"; "cosh"; "tanh"; "expm1"; "log1p"; "cbrt";
    "hypot"; "fabs"; "fmin"; "fmax"; "fma"; "floor"; "ceil"; "fmod";
  ]

let rec c_expr (e : Ast.expr) : string =
  match e with
  | Ast.Num f -> c_lit f
  | Ast.Const c -> c_const c
  | Ast.Var x -> x
  | Ast.Op ("-", [ a ]) -> Printf.sprintf "(-%s)" (c_expr a)
  | Ast.Op ("+", [ a ]) -> c_expr a
  | Ast.Op (("+" | "-" | "*" | "/") as op, a :: (_ :: _ as rest)) ->
      List.fold_left
        (fun acc b -> Printf.sprintf "(%s %s %s)" acc op (c_expr b))
        (c_expr a) rest
  | Ast.Op (f, args) when List.mem f mathlib_fns ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map c_expr args))
  | Ast.Op (f, _) -> raise (Unsupported ("operator " ^ f))
  | Ast.Cmp (op, [ a; b ]) ->
      Printf.sprintf "(%s %s %s)" (c_expr a) op (c_expr b)
  | Ast.Cmp _ -> raise (Unsupported "chained comparison")
  | Ast.AndE args ->
      "(" ^ String.concat " && " (List.map c_expr args) ^ ")"
  | Ast.OrE args -> "(" ^ String.concat " || " (List.map c_expr args) ^ ")"
  | Ast.NotE a -> Printf.sprintf "(!%s)" (c_expr a)
  | Ast.If _ | Ast.Let _ | Ast.LetStar _ ->
      raise (Unsupported "if/let in expression position")
  | Ast.While _ | Ast.WhileStar _ -> raise (Unsupported "loop")

(* Lower an FPCore body to statements assigning [dst]. Ifs become MiniC
   if/else; lets become declarations in the enclosing block. MiniC has
   one flat scope per function, so a let name that collides with an
   already-declared one is refused rather than silently shadowed. *)
let rec c_stmts buf ~indent ~declared ~dst (e : Ast.expr) : unit =
  let pad = String.make indent ' ' in
  match e with
  | Ast.If (c, t, f) ->
      Printf.bprintf buf "%sif %s {\n" pad (c_expr c);
      c_stmts buf ~indent:(indent + 2) ~declared ~dst t;
      Printf.bprintf buf "%s} else {\n" pad;
      c_stmts buf ~indent:(indent + 2) ~declared ~dst f;
      Printf.bprintf buf "%s}\n" pad
  | Ast.Let (binds, body) | Ast.LetStar (binds, body) ->
      let declared =
        List.fold_left
          (fun declared (x, e) ->
            if List.mem x declared then
              raise (Unsupported ("shadowed binding " ^ x));
            Printf.bprintf buf "%sdouble %s = %s;\n" pad x (c_expr e);
            x :: declared)
          declared binds
      in
      c_stmts buf ~indent ~declared ~dst body
  | e -> Printf.bprintf buf "%s%s = %s;\n" pad dst (c_expr e)

(* A complete MiniC program computing [body] over [args] read from
   __arg(0..), printing the result. Raises [Unsupported] on constructs
   MiniC cannot express (loops, exotic operators). *)
let minic_program ~(args : string list) (body : Ast.expr) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "int main() {\n";
  List.iteri
    (fun i x -> Printf.bprintf buf "  double %s = __arg(%d);\n" x i)
    args;
  Buffer.add_string buf "  double __r;\n";
  c_stmts buf ~indent:2 ~declared:("__r" :: args) ~dst:"__r" body;
  Buffer.add_string buf "  print(__r);\n  return 0;\n}\n";
  Buffer.contents buf
