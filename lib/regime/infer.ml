(* End-to-end regime inference for one benchmark: sample a search
   context, run the improver's beam search keeping the whole candidate
   set, localize per-subexpression error, search for a single-variable
   branch structure, emit the branched fix, and re-validate it through
   [Rewrite.Soundness] on a disjoint resampled context. The report is a
   pure function of (bench, seed, points, search knobs) — no wall time,
   no global state — so reports pin byte-identically in tests and replay
   byte-identically in campaigns.

   Three disjoint contexts keep selection honest: the *search* context
   scores candidates and places thresholds, a *validation* context picks
   between original / single / branched (a fix that only wins in-sample
   is rejected here, which is what retires the marginal-overfit
   soundiness findings), and the *resample* context is touched only by
   the final soundness report — never by selection. *)

module Ast = Fpcore.Ast
module B = Bignum.Bigfloat
module Suite = Fpcore.Suite
module Improve = Rewrite.Improve
module Soundness = Rewrite.Soundness

type regime = {
  rg_lo : float option;  (* None = open below *)
  rg_hi : float option;  (* None = open above *)
  rg_cand : int;  (* candidate index in the beam's top list *)
  rg_expr : string;  (* FPCore rendering of the segment's candidate *)
  rg_predicted : float;  (* mean bits over search points in range *)
  rg_actual : float;  (* mean bits over resample points in range *)
  rg_search_points : int;
  rg_resample_points : int;
}

type report = {
  re_name : string;
  re_seed : int;
  re_points : int;  (* per context *)
  re_args : string list;
  re_var : string option;  (* split variable; None = no branch *)
  re_thresholds : float list;
  re_regimes : regime list;  (* length 1 when unbranched *)
  re_original : Ast.expr;
  re_single : Ast.expr;  (* best single-expression fix *)
  re_branched : Ast.expr;  (* = re_single when no split pays off *)
  re_selected : string;  (* "original" | "single" | "branched" *)
  re_fix : Ast.expr;  (* the expression selection settled on *)
  re_pred_before : float;  (* mean bits on the search context *)
  re_pred_single : float;
  re_pred_branched : float;
  re_val_before : float;  (* mean bits on the validation context *)
  re_val_single : float;
  re_val_branched : float;
  re_act_before : float;  (* mean bits on the resample context *)
  re_act_single : float;
  re_act_branched : float;
  re_spots : Localize.spot list;  (* original's localization *)
  re_soundness : Soundness.report;  (* selected fix vs original *)
  re_search_points : int;  (* point evaluations spent by the search *)
}

(* how many regimes the *selected* fix actually has *)
let selected_regimes (selected : string) (regimes : 'a list) : int =
  if selected = "branched" then List.length regimes else 1

(* The swept configuration: at points=96 / depth=4 / penalty=0.05 the
   full seed-42 suite sweep ships zero UNSOUND fixes while still
   splitting the genuinely multi-regime benchmarks. CLI defaults stay
   lighter for interactive use; server/CI call this one. *)
let official_points = 96
let official_depth = 4

let official_options =
  { Search.default_options with Search.penalty_bits = 0.05 }

let mean l = match l with [] -> nan | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* one point's error bits, None on a domain exit *)
let point_error ~prec (e : Ast.expr) (pt : (string * float) list) :
    float option =
  match
    let f = Fpcore.Eval.eval_f pt e in
    let renv = List.map (fun (x, v) -> (x, B.of_float v)) pt in
    let r = Fpcore.Eval.eval_r ~prec renv e in
    Ieee.bits_of_error f (B.to_float r)
  with
  | bits -> Some bits
  | exception _ -> None

(* mean error of [e] over the context points within [lo, hi] on [var];
   domain exits are excluded from the mean but in-range points count *)
let range_stats ~prec e ~var ~lo ~hi (ctx : Sampler.t) : float * int =
  let in_range pt =
    match List.assoc_opt var pt with
    | None -> false
    | Some v ->
        (match lo with Some l -> v > l | None -> true)
        && match hi with Some h -> v <= h | None -> true
  in
  let pts = List.filter in_range ctx in
  let errs = List.filter_map (point_error ~prec e) pts in
  ((if errs = [] then 0.0 else mean errs), List.length pts)

let infer ?(beam = 8) ?(depth = 3) ?(prec = 256) ?(points = 24) ?(seed = 42)
    ?(keep = 6) ?(opts = Search.default_options) ?(min_gain = 0.01) ?threshold
    (bench : Suite.bench) : report =
  let core = Suite.core_of bench in
  let e0 = core.Ast.body in
  let search_ctx = Sampler.context ~seed ~n:points bench in
  (* the final test set is twice the size of the others: soundness is a
     verdict, and a bigger disjoint sample halves the chance that a
     genuinely better fix loses it to sampling noise *)
  let resample_ctx =
    Sampler.context ~seed:(Sampler.resample_seed seed) ~n:(2 * points) bench
  in
  (* scrambling twice gives a third stream, disjoint from both *)
  let val_ctx =
    Sampler.context
      ~seed:(Sampler.resample_seed (Sampler.resample_seed seed))
      ~n:points bench
  in
  let cands = Improve.improve_candidates ~beam ~depth ~prec ~keep e0 search_ctx in
  let cand_arr = Array.of_list (List.map snd cands) in
  let single = cand_arr.(0) in
  (* branch only over points the original can evaluate: points outside
     the original's domain say nothing about where to cut *)
  let pts =
    List.filter (fun pt -> point_error ~prec e0 pt <> None) search_ctx
  in
  let n = List.length pts in
  let k = Array.length cand_arr in
  let search_points = ref 0 in
  let split =
    if n < 4 || core.Ast.args = [] || k < 2 then None
    else begin
      let errors =
        Array.map
          (fun c ->
            Array.of_list
              (List.map
                 (fun pt ->
                   incr search_points;
                   match point_error ~prec c pt with
                   | Some b -> b
                   | None -> 64.0)
                 pts))
          cand_arr
      in
      let vars =
        List.map
          (fun v ->
            ( v,
              Array.of_list
                (List.map (fun pt -> try List.assoc v pt with Not_found -> nan) pts)
            ))
          core.Ast.args
      in
      match Search.search ~opts ~vars ~errors () with
      | None -> None
      | Some s ->
          let eval c pt = point_error ~prec cand_arr.(c) pt in
          let s, probes = Search.refine ~opts ~points:pts ~eval s in
          search_points := !search_points + probes;
          Some s
    end
  in
  let branched =
    match split with
    | None -> single
    | Some s ->
        Emit.if_chain ~var:s.Search.s_var ~thresholds:s.Search.s_thresholds
          ~cands:(List.map (fun i -> cand_arr.(i)) s.Search.s_cands)
  in
  let mean_on ctx e = Improve.mean_error_bits ~prec e ctx in
  let pred_before = mean_on search_ctx e0 in
  let pred_single = mean_on search_ctx single in
  let pred_branched = mean_on search_ctx branched in
  let val_before = mean_on val_ctx e0 in
  let val_single = mean_on val_ctx single in
  let val_branched = mean_on val_ctx branched in
  let act_before = mean_on resample_ctx e0 in
  let act_single = mean_on resample_ctx single in
  let act_branched = mean_on resample_ctx branched in
  (* Selection: the fix must strictly improve on the validation context
     AND clear [min_gain] predicted bits on the search context it was
     optimized against — a candidate that cannot beat the original by
     more than noise even in-sample is noise-chasing, and shipping it is
     what used to produce the marginal soundiness findings. Everything
     else falls back to the original, sound by equality. *)
  let selected, fix =
    let cand_label, cand_expr, cand_val, cand_pred =
      if val_branched < val_single then
        ("branched", branched, val_branched, pred_branched)
      else ("single", single, val_single, pred_single)
    in
    if cand_val < val_before && pred_before -. cand_pred >= min_gain then
      (cand_label, cand_expr)
    else ("original", e0)
  in
  let regimes =
    match split with
    | None ->
        let mean_of ctx =
          match List.filter_map (point_error ~prec single) ctx with
          | [] -> 0.0
          | errs -> mean errs
        in
        let predicted = mean_of search_ctx and actual = mean_of resample_ctx in
        [
          {
            rg_lo = None;
            rg_hi = None;
            rg_cand = 0;
            rg_expr = Soundness.render_expr single;
            rg_predicted = predicted;
            rg_actual = actual;
            rg_search_points = List.length search_ctx;
            rg_resample_points = List.length resample_ctx;
          };
        ]
    | Some s ->
        let bounds =
          (* (lo, hi) per segment from the ascending thresholds *)
          let rec go lo = function
            | [] -> [ (lo, None) ]
            | t :: rest -> (lo, Some t) :: go (Some t) rest
          in
          go None s.Search.s_thresholds
        in
        List.map2
          (fun (lo, hi) cand ->
            let e = cand_arr.(cand) in
            let predicted, np =
              range_stats ~prec e ~var:s.Search.s_var ~lo ~hi search_ctx
            and actual, nr =
              range_stats ~prec e ~var:s.Search.s_var ~lo ~hi resample_ctx
            in
            {
              rg_lo = lo;
              rg_hi = hi;
              rg_cand = cand;
              rg_expr = Soundness.render_expr e;
              rg_predicted = predicted;
              rg_actual = actual;
              rg_search_points = np;
              rg_resample_points = nr;
            })
          bounds s.Search.s_cands
  in
  let spots =
    let all = Localize.local_errors ~prec e0 search_ctx in
    match threshold with
    | Some t -> Localize.above ~threshold:t all
    | None -> Localize.above all
  in
  let soundness =
    Soundness.report_of ~prec ~name:bench.Suite.name ~seed ~points
      ~resample:resample_ctx
      {
        Improve.original = e0;
        improved = fix;
        error_before = pred_before;
        error_after =
          (match selected with
          | "branched" -> pred_branched
          | "single" -> pred_single
          | _ -> pred_before);
        steps = [];
      }
  in
  {
    re_name = bench.Suite.name;
    re_seed = seed;
    re_points = points;
    re_args = core.Ast.args;
    re_var = (match split with Some s -> Some s.Search.s_var | None -> None);
    re_thresholds =
      (match split with Some s -> s.Search.s_thresholds | None -> []);
    re_regimes = regimes;
    re_original = e0;
    re_single = single;
    re_branched = branched;
    re_selected = selected;
    re_fix = fix;
    re_pred_before = pred_before;
    re_pred_single = pred_single;
    re_pred_branched = pred_branched;
    re_val_before = val_before;
    re_val_single = val_single;
    re_val_branched = val_branched;
    re_act_before = act_before;
    re_act_single = act_single;
    re_act_branched = act_branched;
    re_spots = spots;
    re_soundness = soundness;
    re_search_points = !search_points;
  }

(* thresholds as (var, value) pairs, the shape the fleet JSONL carries —
   empty unless selection actually shipped the branched fix *)
let thresholds (r : report) : (string * float) list =
  match r.re_var with
  | Some v when r.re_selected = "branched" ->
      List.map (fun t -> (v, t)) r.re_thresholds
  | _ -> []

(* ---------- the error table ---------- *)

let fmt_bits = Soundness.fmt_bits

let fmt_range ~var lo hi =
  match (lo, hi) with
  | None, None -> "(all)"
  | None, Some h -> Printf.sprintf "%s <= %.6g" var h
  | Some l, None -> Printf.sprintf "%s > %.6g" var l
  | Some l, Some h -> Printf.sprintf "%.6g < %s <= %.6g" l var h

(* error-table.rkt style: actual next to predicted, per regime and per
   expression, with the localization spots that motivated the branch *)
let table (r : report) : string =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "regime %s (seed %d, %d+%d+%d points): %s\n" r.re_name
    r.re_seed r.re_points r.re_points (2 * r.re_points)
    (match r.re_var with
    | Some v -> Printf.sprintf "%d regimes on %s" (List.length r.re_regimes) v
    | None -> "no branch (single candidate wins)");
  Printf.bprintf buf "  %-28s %10s %10s %6s %6s\n" "branch" "predicted"
    "actual" "srch" "rsmp";
  List.iter
    (fun g ->
      Printf.bprintf buf "  %-28s %10s %10s %6d %6d\n"
        (fmt_range ~var:(Option.value r.re_var ~default:"") g.rg_lo g.rg_hi)
        (fmt_bits g.rg_predicted) (fmt_bits g.rg_actual) g.rg_search_points
        g.rg_resample_points)
    r.re_regimes;
  Printf.bprintf buf "  %-28s %10s %10s %10s\n" "expr" "predicted" "validate"
    "actual";
  Printf.bprintf buf "  %-28s %10s %10s %10s\n" "original"
    (fmt_bits r.re_pred_before) (fmt_bits r.re_val_before)
    (fmt_bits r.re_act_before);
  Printf.bprintf buf "  %-28s %10s %10s %10s\n" "single"
    (fmt_bits r.re_pred_single) (fmt_bits r.re_val_single)
    (fmt_bits r.re_act_single);
  Printf.bprintf buf "  %-28s %10s %10s %10s\n" "branched"
    (fmt_bits r.re_pred_branched) (fmt_bits r.re_val_branched)
    (fmt_bits r.re_act_branched);
  Printf.bprintf buf "  selected: %s (by validation context)\n" r.re_selected;
  (match r.re_spots with
  | [] -> Printf.bprintf buf "  spots above threshold: none\n"
  | spots ->
      Printf.bprintf buf "  spots above threshold:\n";
      List.iter
        (fun (s : Localize.spot) ->
          Printf.bprintf buf "    %s mean %s max %s (%d pts)\n" s.Localize.sp_expr
            (fmt_bits s.Localize.sp_mean) (fmt_bits s.Localize.sp_max)
            s.Localize.sp_points)
        spots);
  Printf.bprintf buf "  fix: %s\n" (Emit.render_core ~args:r.re_args r.re_fix);
  Printf.bprintf buf "  %s"
    (if r.re_soundness.Soundness.r_sound then "sound on resample"
     else
       Printf.sprintf "UNSOUND on resample (+%.2f bits)"
         r.re_soundness.Soundness.r_regression);
  Buffer.contents buf

(* ---------- JSON ---------- *)

let regime_to_json ~var (g : regime) : Json.t =
  Json.Obj
    ([ ("expr", Json.Str g.rg_expr) ]
    @ (match g.rg_lo with Some l -> [ ("lo", Json.Num l) ] | None -> [])
    @ (match g.rg_hi with Some h -> [ ("hi", Json.Num h) ] | None -> [])
    @ [
        ("var", Json.Str var);
        ("predicted_bits", Json.Num g.rg_predicted);
        ("actual_bits", Json.Num g.rg_actual);
        ("search_points", Json.Num (float_of_int g.rg_search_points));
        ("resample_points", Json.Num (float_of_int g.rg_resample_points));
      ])

let to_json (r : report) : Json.t =
  Json.Obj
    [
      ("name", Json.Str r.re_name);
      ("seed", Json.Num (float_of_int r.re_seed));
      ("points", Json.Num (float_of_int r.re_points));
      ( "regimes",
        Json.Num (float_of_int (selected_regimes r.re_selected r.re_regimes))
      );
      ("selected", Json.Str r.re_selected);
      ( "thresholds",
        Json.Arr
          (List.map
             (fun (v, t) ->
               Json.Obj [ ("var", Json.Str v); ("value", Json.Num t) ])
             (thresholds r)) );
      ( "regime_table",
        Json.Arr
          (List.map
             (regime_to_json ~var:(Option.value r.re_var ~default:""))
             r.re_regimes) );
      ("original", Json.Str (Emit.render_core ~args:r.re_args r.re_original));
      ("single", Json.Str (Emit.render_core ~args:r.re_args r.re_single));
      ("branched", Json.Str (Emit.render_core ~args:r.re_args r.re_branched));
      ("fix", Json.Str (Emit.render_core ~args:r.re_args r.re_fix));
      ("pred_before_bits", Json.Num r.re_pred_before);
      ("pred_single_bits", Json.Num r.re_pred_single);
      ("pred_branched_bits", Json.Num r.re_pred_branched);
      ("val_before_bits", Json.Num r.re_val_before);
      ("val_single_bits", Json.Num r.re_val_single);
      ("val_branched_bits", Json.Num r.re_val_branched);
      ("act_before_bits", Json.Num r.re_act_before);
      ("act_single_bits", Json.Num r.re_act_single);
      ("act_branched_bits", Json.Num r.re_act_branched);
      ("sound", Json.Bool r.re_soundness.Soundness.r_sound);
      ("search_points", Json.Num (float_of_int r.re_search_points));
      ( "spots",
        Json.Arr
          (List.map
             (fun (s : Localize.spot) ->
               Json.Obj
                 [
                   ("expr", Json.Str s.Localize.sp_expr);
                   ("mean_bits", Json.Num s.Localize.sp_mean);
                   ("max_bits", Json.Num s.Localize.sp_max);
                   ("points", Json.Num (float_of_int s.Localize.sp_points));
                 ])
             r.re_spots) );
      ("error_table", Json.Str (table r));
    ]
