(* HDR-style latency histogram: log-spaced major buckets (one per power
   of two of microseconds) each split into 16 linear sub-buckets, so any
   recorded value is off by at most 1/16 ≈ 6% relative error — constant
   memory over a 0 µs .. ~1 hour dynamic range, exact below 16 µs.

   Same idea as HdrHistogram with 4 significant-value bits: the bucket
   index of value v (in µs) is built from the position of v's top bit
   and the next 4 bits below it. Everything is plain int arrays so
   per-worker histograms are cheap and [merge] is elementwise. *)

let sub_bits = 4
let sub = 1 lsl sub_bits  (* 16 linear sub-buckets per power of two *)
let max_pow = 42  (* covers ~2^42 µs; saturates beyond *)
let buckets = sub + ((max_pow - sub_bits) * sub)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : float;  (* seconds *)
  mutable vmax : float;
  mutable vmin : float;
}

let create () =
  {
    counts = Array.make buckets 0;
    n = 0;
    sum = 0.0;
    vmax = 0.0;
    vmin = infinity;
  }

let msb_pos (v : int) : int =
  (* position of the highest set bit; v > 0 *)
  let rec go v p = if v = 1 then p else go (v lsr 1) (p + 1) in
  go v 0

let index_of_us (u : int) : int =
  if u < sub then u
  else
    let p = msb_pos u in
    let p = min p (max_pow - 1) in
    let g = p - sub_bits in
    let s = (u lsr g) land (sub - 1) in
    min (buckets - 1) (sub + (g * sub) + s)

(* representative value (upper edge) of a bucket, in µs *)
let us_of_index (i : int) : int =
  if i < sub then i
  else
    let g = (i - sub) / sub in
    let s = (i - sub) mod sub in
    ((sub + s + 1) lsl g) - 1

let record (t : t) (seconds : float) : unit =
  let s = if Float.is_nan seconds || seconds < 0.0 then 0.0 else seconds in
  let us = int_of_float (Float.min (s *. 1e6) 4.0e12) in
  t.counts.(index_of_us us) <- t.counts.(index_of_us us) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. s;
  if s > t.vmax then t.vmax <- s;
  if s < t.vmin then t.vmin <- s

let merge (dst : t) (src : t) : unit =
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin

let count (t : t) : int = t.n
let mean (t : t) : float = if t.n = 0 then nan else t.sum /. float_of_int t.n
let max_value (t : t) : float = if t.n = 0 then nan else t.vmax
let min_value (t : t) : float = if t.n = 0 then nan else t.vmin

(* p in [0,1]: smallest bucket upper edge covering at least p of the
   recorded values — the usual cumulative-rank walk *)
let quantile (t : t) (p : float) : float =
  if t.n = 0 then nan
  else begin
    let rank =
      let r = int_of_float (Float.ceil (p *. float_of_int t.n)) in
      max 1 (min t.n r)
    in
    let acc = ref 0 in
    let found = ref nan in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           found := float_of_int (us_of_index i) /. 1e6;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end
