(* fpgrind.loadgen — the seeded open-loop load generator behind
   `fpgrind loadgen`.

   Open-loop means fixed arrival rate: request i is *due* at
   start + i/rate whether or not earlier requests have finished, and its
   latency is measured from that due time — so a server that stalls
   accumulates queueing delay in the percentiles instead of quietly
   slowing the generator down (the coordinated-omission trap of
   closed-loop "send, wait, send" drivers).

   The request stream is a pure function of (seed, index, mix): index i
   draws from Fuzz.Rng.make_indexed ~seed i — the same per-index
   SplitMix64 streams the fuzz and campaign subsystems use — to pick a
   mix kind and materialize the body, either `bench:NAME` over the
   straight-line suite or a fresh MiniC program from the fuzz generator.
   Same seed, same bodies, regardless of timing, concurrency, or which
   connection carries which request. Bench bodies repeat (and exercise
   the result cache); generated programs are unique (and exercise the
   analysis path).

   Workers are [lg_conns] threads, each holding one keep-alive
   connection ([Serve.Client.conn]) and pulling the next due index off a
   shared atomic counter; per-worker histograms and status counts merge
   after the join, so the hot path takes no locks. *)

module Hist = Hist

type kind = Bench | Minic

type config = {
  lg_host : string;
  lg_port : int;
  lg_rate : float;  (* target arrivals per second *)
  lg_duration : float;  (* seconds of offered load *)
  lg_conns : int;  (* concurrent keep-alive connections *)
  lg_seed : int;
  lg_mix : (int * kind) list;  (* integer weights, Rng.choose-shaped *)
  lg_engine : string;  (* engine query parameter *)
  lg_iterations : int;  (* sampled inputs per analysis *)
}

let default_config =
  {
    lg_host = "127.0.0.1";
    lg_port = 8080;
    lg_rate = 50.0;
    lg_duration = 5.0;
    lg_conns = 4;
    lg_seed = 42;
    lg_mix = [ (1, Bench); (1, Minic) ];
    lg_engine = "sanitize";
    lg_iterations = 8;
  }

let kind_name = function Bench -> "bench" | Minic -> "minic"

let mix_to_string (mix : (int * kind) list) : string =
  String.concat ","
    (List.map (fun (w, k) -> Printf.sprintf "%s=%d" (kind_name k) w) mix)

(* "bench=3,minic=1" — integer weights, unlisted kinds weigh 0 *)
let mix_of_string (s : string) : (int * kind) list =
  let parse_item item =
    let item = String.trim item in
    let name, w =
      match String.index_opt item '=' with
      | None -> (item, 1)
      | Some i -> (
          let n = String.sub item 0 i in
          let v = String.sub item (i + 1) (String.length item - i - 1) in
          match int_of_string_opt (String.trim v) with
          | Some w when w >= 0 -> (n, w)
          | _ -> failwith ("loadgen: bad mix weight in " ^ item))
    in
    match String.trim name with
    | "bench" -> (w, Bench)
    | "minic" -> (w, Minic)
    | other -> failwith ("loadgen: unknown mix kind " ^ other)
  in
  let mix =
    String.split_on_char ',' s
    |> List.filter (fun i -> String.trim i <> "")
    |> List.map parse_item
    |> List.filter (fun (w, _) -> w > 0)
  in
  if mix = [] then failwith "loadgen: empty request mix";
  mix

(* ---------- the deterministic request plan ---------- *)

type spec = {
  sp_index : int;
  sp_path : string;  (* /analyze?… with all parameters *)
  sp_body : string;
}

let bench_names =
  lazy
    (List.filter_map
       (fun (b : Fpcore.Suite.bench) ->
         match b.Fpcore.Suite.group with
         | `Straight -> Some b.Fpcore.Suite.name
         | `Loop -> None)
       Fpcore.Suite.all)

let spec_of_index (c : config) (i : int) : spec =
  let rng = Fuzz.Rng.make_indexed ~seed:c.lg_seed i in
  let enc = Serve.Http.percent_encode in
  let base =
    Printf.sprintf "/analyze?iterations=%d&seed=1&engine=%s" c.lg_iterations
      (enc c.lg_engine)
  in
  match Fuzz.Rng.choose rng c.lg_mix with
  | Bench ->
      let names = Lazy.force bench_names in
      let name = List.nth names (Fuzz.Rng.int rng (List.length names)) in
      { sp_index = i; sp_path = base; sp_body = "bench:" ^ name }
  | Minic ->
      let prog, inputs =
        Fuzz.Gen.program ~config:Fuzz.Gen.straightline rng
      in
      let path =
        Printf.sprintf "%s&name=lg-%d%s" base i
          (if Array.length inputs = 0 then ""
           else
             "&inputs="
             ^ enc
                 (String.concat ","
                    (Array.to_list inputs |> List.map (Printf.sprintf "%h"))))
      in
      { sp_index = i; sp_path = path; sp_body = Fuzz.Printer.program prog }

let plan (c : config) : spec array =
  let n = max 1 (int_of_float (Float.round (c.lg_rate *. c.lg_duration))) in
  Array.init n (spec_of_index c)

(* ---------- the report ---------- *)

type report = {
  r_requests : int;
  r_ok : int;  (* 2xx *)
  r_throttled : int;  (* 503 backpressure / rate limit *)
  r_errors_4xx : int;
  r_errors_5xx : int;  (* 5xx excluding 503 *)
  r_conn_errors : int;  (* transport failures after the retry *)
  r_elapsed_s : float;
  r_hist : Hist.t;  (* latency of every completed request, seconds *)
}

let throughput (r : report) : float =
  if r.r_elapsed_s <= 0.0 then 0.0
  else float_of_int r.r_ok /. r.r_elapsed_s

let to_json (c : config) (r : report) : Fleet.Json.t =
  let num v = Fleet.Json.Num v in
  let ms v = if Float.is_nan v then Fleet.Json.Null else num (v *. 1000.0) in
  Fleet.Json.Obj
    [
      ("seed", num (float_of_int c.lg_seed));
      ("rate", num c.lg_rate);
      ("duration_s", num c.lg_duration);
      ("conns", num (float_of_int c.lg_conns));
      ("mix", Fleet.Json.Str (mix_to_string c.lg_mix));
      ("engine", Fleet.Json.Str c.lg_engine);
      ("requests", num (float_of_int r.r_requests));
      ("ok", num (float_of_int r.r_ok));
      ("throttled_503", num (float_of_int r.r_throttled));
      ("errors_4xx", num (float_of_int r.r_errors_4xx));
      ("errors_5xx", num (float_of_int r.r_errors_5xx));
      ("conn_errors", num (float_of_int r.r_conn_errors));
      ("elapsed_s", num r.r_elapsed_s);
      ("throughput_rps", num (throughput r));
      ("latency_ms", Fleet.Json.Obj [
        ("p50", ms (Hist.quantile r.r_hist 0.50));
        ("p90", ms (Hist.quantile r.r_hist 0.90));
        ("p99", ms (Hist.quantile r.r_hist 0.99));
        ("mean", ms (Hist.mean r.r_hist));
        ("max", ms (Hist.max_value r.r_hist));
      ]);
    ]

(* ---------- the open-loop driver ---------- *)

type worker_acc = {
  w_hist : Hist.t;
  mutable w_ok : int;
  mutable w_throttled : int;
  mutable w_4xx : int;
  mutable w_5xx : int;
  mutable w_conn : int;
}

let run (c : config) : report =
  let specs = plan c in
  let n = Array.length specs in
  let next = Atomic.make 0 in
  let start = Unix.gettimeofday () +. 0.05 in
  let fresh_acc () =
    {
      w_hist = Hist.create ();
      w_ok = 0;
      w_throttled = 0;
      w_4xx = 0;
      w_5xx = 0;
      w_conn = 0;
    }
  in
  let worker acc =
    let conn = Serve.Client.connect ~host:c.lg_host ~port:c.lg_port () in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let sp = specs.(i) in
        let due = start +. (float_of_int i /. c.lg_rate) in
        let now = Unix.gettimeofday () in
        if due > now then Thread.delay (due -. now);
        (match
           Serve.Client.request_conn conn ~meth:"POST" ~path:sp.sp_path
             ~body:sp.sp_body ()
         with
        | resp ->
            (* open-loop latency: from the scheduled arrival, so queueing
               behind a slow server is charged to the server *)
            Hist.record acc.w_hist (Unix.gettimeofday () -. due);
            let s = resp.Serve.Client.c_status in
            if s / 100 = 2 then acc.w_ok <- acc.w_ok + 1
            else if s = 503 then acc.w_throttled <- acc.w_throttled + 1
            else if s / 100 = 4 then acc.w_4xx <- acc.w_4xx + 1
            else acc.w_5xx <- acc.w_5xx + 1
        | exception _ ->
            acc.w_conn <- acc.w_conn + 1;
            Serve.Client.close conn);
        go ()
      end
    in
    go ();
    Serve.Client.close conn
  in
  let accs = List.init (max 1 c.lg_conns) (fun _ -> fresh_acc ()) in
  let threads = List.map (fun acc -> Thread.create worker acc) accs in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. start in
  let hist = Hist.create () in
  let total = List.fold_left in
  let sum f = total (fun a w -> a + f w) 0 accs in
  List.iter (fun w -> Hist.merge hist w.w_hist) accs;
  {
    r_requests = n;
    r_ok = sum (fun w -> w.w_ok);
    r_throttled = sum (fun w -> w.w_throttled);
    r_errors_4xx = sum (fun w -> w.w_4xx);
    r_errors_5xx = sum (fun w -> w.w_5xx);
    r_conn_errors = sum (fun w -> w.w_conn);
    r_elapsed_s = elapsed;
    r_hist = hist;
  }
