(* fpgrind.shard — the pre-forked multi-process shard layer.

   The parent binds the listening socket once (so `--port 0` resolves
   before anything else happens), then forks N workers that inherit the
   socket fd and each run a full Serve.Server — own Fleet.Pool, own
   metrics registry, own in-memory cache — accept()ing from the shared
   socket (the kernel load-balances; the listener is non-blocking so an
   accept race between shards resolves to EAGAIN, not a stuck worker).
   Forking happens before any domain or thread is created: an OCaml 5
   runtime must not fork after spawning domains.

   Isolation is the point: an analysis that crashes or OOMs a worker
   takes down one shard's in-flight requests, nothing else. The parent
   waitpid()s, logs the death, bumps the restart count in the status
   file (each worker's /metrics reads it as fpgrind_shard_restarts_total)
   and forks a replacement against the same socket.

   Shards share results through Serve.Cachefile — an advisory-locked
   append-only JSONL file each worker publishes fresh outcomes to and
   tails on cache misses — so a result computed on shard 1 is a cache
   hit on shard 3, and the file doubles as the durable store (`fpgrind
   validate` reads it directly; nothing needs flushing on a crash).

   Shutdown (SIGTERM/SIGINT to the parent) is a rolling drain: workers
   are SIGTERMed and waited one at a time, each finishing its open
   connections and queued jobs before the next is asked to stop, so the
   service keeps answering on the remaining shards until the end. A
   worker that ignores the drain for [drain_grace] seconds is killed. *)

type config = {
  sh_shards : int;
  sh_serve : Serve.Server.config;  (* template for each worker *)
  sh_status_path : string;  (* parent status JSON: shards, restarts *)
  sh_drain_grace : float;  (* seconds before an undrained worker is killed *)
  sh_max_restarts : int;  (* respawn budget; crossing it shuts down *)
}

let default_config ~serve ~status_path =
  {
    sh_shards = 4;
    sh_serve = serve;
    sh_status_path = status_path;
    sh_drain_grace = 30.0;
    sh_max_restarts = 64;
  }

(* ---------- parent status file ---------- *)

(* Atomic temp+rename, same discipline as campaign checkpoints: a
   worker scraping mid-update sees the old status, never a torn one. *)
let write_status ~path ~shards ~restarts =
  let dir = Filename.dirname path in
  match Filename.temp_file ~temp_dir:dir "shard-status" ".tmp" with
  | exception Sys_error _ -> ()
  | tmp -> (
      (try
         let oc = open_out_bin tmp in
         Printf.fprintf oc "{\"shards\": %d, \"restarts\": %d}\n" shards
           restarts;
         close_out oc
       with Sys_error _ -> ());
      try Sys.rename tmp path with Sys_error _ -> ())

(* ---------- the listening socket ---------- *)

let listen ~host ~port : Unix.file_descr * int =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound)

(* ---------- workers ---------- *)

(* The child half of a fork: build a whole server on the inherited
   socket and serve until SIGTERM. Never returns. *)
let worker_main (c : config) (listen_fd : Unix.file_descr) : 'a =
  let code =
    try
      let srv =
        Serve.Server.create
          {
            c.sh_serve with
            Serve.Server.listen_fd = Some listen_fd;
            shard_status_path = Some c.sh_status_path;
          }
      in
      let on_signal _ = Serve.Server.stop srv in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Serve.Server.run srv;
      0
    with e ->
      Printf.eprintf "fpgrind shard: worker %d died: %s\n%!" (Unix.getpid ())
        (Printexc.to_string e);
      1
  in
  exit code

let spawn (c : config) (listen_fd : Unix.file_descr) : int =
  match Unix.fork () with
  | 0 -> worker_main c listen_fd
  | pid -> pid

let describe_death status =
  match status with
  | Unix.WEXITED 0 -> "exited cleanly"
  | Unix.WEXITED n -> Printf.sprintf "exited with code %d" n
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* ---------- the supervisor loop ---------- *)

let run ?(on_listen = fun (_ : int) -> ()) (c : config) : int =
  if c.sh_shards < 1 then invalid_arg "Shard.run: need at least one shard";
  let listen_fd, port =
    match c.sh_serve.Serve.Server.listen_fd with
    | Some fd -> (
        ( fd,
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> c.sh_serve.Serve.Server.port ))
    | None ->
        listen ~host:c.sh_serve.Serve.Server.host
          ~port:c.sh_serve.Serve.Server.port
  in
  on_listen port;
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let restarts = ref 0 in
  write_status ~path:c.sh_status_path ~shards:c.sh_shards ~restarts:0;
  let pids = Array.init c.sh_shards (fun _ -> spawn c listen_fd) in
  let quiet = c.sh_serve.Serve.Server.quiet in
  if not quiet then
    Printf.eprintf "fpgrind shard: %d workers up (%s)\n%!" c.sh_shards
      (String.concat " "
         (Array.to_list (Array.map string_of_int pids)));
  (* supervise: poll for dead workers, respawn unless stopping.
     WNOHANG + sleep keeps signal delivery simple — no EINTR dance. *)
  let exit_code = ref 0 in
  while not !stop do
    (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> Thread.delay 0.05
    | pid, status -> (
        match Array.find_index (fun p -> p = pid) pids with
        | None -> ()
        | Some i ->
            incr restarts;
            write_status ~path:c.sh_status_path ~shards:c.sh_shards
              ~restarts:!restarts;
            if !restarts > c.sh_max_restarts then begin
              Printf.eprintf
                "fpgrind shard: worker %d %s; restart budget (%d) exhausted, \
                 shutting down\n%!"
                pid (describe_death status) c.sh_max_restarts;
              exit_code := 1;
              stop := true
            end
            else begin
              pids.(i) <- spawn c listen_fd;
              if not quiet then
                Printf.eprintf
                  "fpgrind shard: worker %d %s; respawned as %d (restart \
                   %d)\n%!"
                  pid (describe_death status)
                  pids.(i) !restarts
            end)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Thread.delay 0.05)
  done;
  (* rolling drain: stop workers one at a time so the others keep
     serving until their turn comes *)
  Array.iter
    (fun pid ->
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      let deadline = Unix.gettimeofday () +. c.sh_drain_grace in
      let rec wait () =
        match Unix.waitpid [ Unix.WNOHANG ] pid with
        | 0, _ ->
            if Unix.gettimeofday () > deadline then begin
              Printf.eprintf
                "fpgrind shard: worker %d ignored drain; killing\n%!" pid;
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
            end
            else begin
              Thread.delay 0.02;
              wait ()
            end
        | _, _ -> ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
    pids;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (* one line, --quiet or not: this is the operational signal that the
     rolling drain finished and the store (the shared cache file, which
     workers append to synchronously) is on disk *)
  Printf.eprintf "fpgrind shard: drained, store flushed, exiting\n%!";
  !exit_code
