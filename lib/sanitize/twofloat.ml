(* Double-double ("twofloat") arithmetic: an unevaluated sum hi + lo of
   two IEEE doubles with |lo| <= ulp(hi)/2, giving ~106 significand bits
   with no allocation beyond the pair itself. The algorithms are the
   classical error-free transformations (Knuth/Dekker two_sum, fma-based
   two_prod) composed the way the QD library does for its "accurate"
   variants; see Hida/Li/Bailey, "Library for Double-Double and
   Quad-Double Arithmetic".

   Caveats, by construction:
   - once hi leaves the finite range the pair degrades to a plain double
     (lo is forced to 0.0 so inf/nan propagate cleanly instead of
     leaving an inf - inf = nan residue in the low word);
   - in the subnormal range the error terms themselves round, so
     precision degrades smoothly back to ordinary double precision;
   - transcendental pass-throughs evaluate libm at double precision
     (there is no quad libm here), so only arithmetic, sqrt and fma
     carry the full ~106 bits. *)

type t = { hi : float; lo : float }

let mk hi lo =
  (* non-finite hi: the low word is meaningless (typically nan from an
     inf - inf in an error term); drop it *)
  if Float.is_finite hi then { hi; lo } else { hi; lo = 0.0 }

let zero = { hi = 0.0; lo = 0.0 }
let of_float f = mk f 0.0
(* a zero low word must not launder the head through an addition:
   -0.0 +. 0.0 is +0.0, which would lose the sign of a negative zero *)
let to_float t = if t.lo = 0.0 then t.hi else t.hi +. t.lo
let is_finite t = Float.is_finite t.hi
let is_nan t = Float.is_nan t.hi

(* ---------- error-free transformations ---------- *)

(* s + err = a + b exactly (Knuth, 6 flops, no precondition) *)
let two_sum a b =
  let s = a +. b in
  let bb = s -. a in
  let err = (a -. (s -. bb)) +. (b -. bb) in
  (s, err)

(* s + err = a + b exactly, requires |a| >= |b| or a = 0. Also the
   renormalization step of every dd operation, so a zero [b] must not
   launder [a] through an addition: -0.0 +. 0.0 is +0.0, which would
   turn an exact -0.0 product into +0.0 and flip the sign of a
   subsequent division by it. *)
let quick_two_sum a b =
  if b = 0.0 then (a, 0.0)
  else begin
    let s = a +. b in
    let err = b -. (s -. a) in
    (s, err)
  end

(* p + err = a * b exactly (one fused multiply-add) *)
let two_prod a b =
  let p = a *. b in
  let err = Float.fma a b (-.p) in
  (p, err)

(* ---------- arithmetic ---------- *)

(* QD's accurate (ieee_add) variant: both words enter error-free sums.
   A head that leaves the finite range short-circuits: past overflow the
   error terms are inf - inf = nan and would poison the
   renormalization. *)
let add x y =
  let s1, s2 = two_sum x.hi y.hi in
  if not (Float.is_finite s1) then of_float s1
  else begin
    let t1, t2 = two_sum x.lo y.lo in
    let s2 = s2 +. t1 in
    let s1, s2 = quick_two_sum s1 s2 in
    let s2 = s2 +. t2 in
    let s1, s2 = quick_two_sum s1 s2 in
    mk s1 s2
  end

let neg t = { hi = -.t.hi; lo = -.t.lo }
let abs t = if t.hi < 0.0 || (t.hi = 0.0 && t.lo < 0.0) then neg t else t
let sub x y = add x (neg y)

let mul x y =
  let p1, p2 = two_prod x.hi y.hi in
  if not (Float.is_finite p1) then of_float p1
  else begin
    let p2 = p2 +. ((x.hi *. y.lo) +. (x.lo *. y.hi)) in
    let s1, s2 = quick_two_sum p1 p2 in
    mk s1 s2
  end

(* dd * double, used by long division below *)
let mul_d x (d : float) =
  let p1, p2 = two_prod x.hi d in
  if not (Float.is_finite p1) then of_float p1
  else begin
    let p2 = p2 +. (x.lo *. d) in
    let s1, s2 = quick_two_sum p1 p2 in
    mk s1 s2
  end

let add_d x (d : float) =
  let s1, s2 = two_sum x.hi d in
  if not (Float.is_finite s1) then of_float s1
  else begin
    let s2 = s2 +. x.lo in
    let s1, s2 = quick_two_sum s1 s2 in
    mk s1 s2
  end

(* QD's accurate division: three quotient terms by long division. A
   non-finite operand falls back to the double quotient: with y = inf
   the head quotient x.hi / inf = 0.0 is finite, but the long-division
   remainder would then compute inf * 0.0 = nan and poison a result the
   client correctly resolves to 0. *)
let div x y =
  if not (Float.is_finite x.hi) || not (Float.is_finite y.hi) then
    of_float (x.hi /. y.hi)
  else if y.hi = 0.0 then of_float (x.hi /. y.hi)  (* ±inf or nan, by sign *)
  else begin
    let q1 = x.hi /. y.hi in
    if not (Float.is_finite q1) then of_float q1
    else begin
      let r = sub x (mul_d y q1) in
      let q2 = r.hi /. y.hi in
      let r = sub r (mul_d y q2) in
      let q3 = r.hi /. y.hi in
      let s1, s2 = quick_two_sum q1 q2 in
      add_d (mk s1 s2) q3
    end
  end

(* Karp's trick: one double sqrt plus one Newton correction in dd *)
let sqrt x =
  if x.hi = 0.0 && x.lo = 0.0 then of_float (Float.sqrt x.hi)
  else if x.hi < 0.0 then of_float Float.nan
  else if not (Float.is_finite x.hi) then of_float (Float.sqrt x.hi)
  else begin
    let r = Float.sqrt x.hi in
    let rr =
      let p, e = two_prod r r in
      mk p e
    in
    let err = sub x rr in
    let corr = err.hi /. (2.0 *. r) in
    let s1, s2 = quick_two_sum r corr in
    mk s1 s2
  end

(* fma as a composition: mul is already error-free in its head terms, so
   the composed result stays well within 2 ulps of the 106-bit format *)
let fma x y z = add (mul x y) z

(* ---------- comparisons ---------- *)

(* IEEE-style: any comparison with a nan is false (so [ne] is true) *)
let eq x y = x.hi = y.hi && x.lo = y.lo
let lt x y = x.hi < y.hi || (x.hi = y.hi && x.lo < y.lo)
let le x y = x.hi < y.hi || (x.hi = y.hi && x.lo <= y.lo)

let min2 x y =
  if is_nan x then x else if is_nan y then y else if le x y then x else y

let max2 x y =
  if is_nan x then x else if is_nan y then y else if le x y then y else x

(* ---------- conversions ---------- *)

(* int64 -> dd; exact for |i| < 2^62, else within 1 ulp of the head *)
let of_int64 (i : int64) =
  let hi = Int64.to_float i in
  if Float.abs hi >= 0x1p62 then of_float hi
  else begin
    let lo = Int64.to_float (Int64.sub i (Int64.of_float hi)) in
    let s1, s2 = quick_two_sum hi lo in
    mk s1 s2
  end

(* Integer conversion assembles the result in int64: both words are
   split into (exact) integral and fractional parts — integral doubles
   below 2^62 convert exactly — and the fractional remainder stays a dd,
   because boundary cases like 0.5 - 1e-20 collapse to 0.5 in a plain
   double. Truncation is toward zero (the client's F64toI64tz); rounding
   is half away from zero (Float.round, the client's F64toI64rn). *)
let to_int64 ~(rn : bool) t : int64 option =
  if not (Float.is_finite t.hi) then None
  else if Float.abs t.hi >= 0x1p62 then None
  else begin
    let ip = Float.trunc t.hi in
    let lp = Float.trunc t.lo in
    let base = Int64.add (Int64.of_float ip) (Int64.of_float lp) in
    let s, e = two_sum (t.hi -. ip) (t.lo -. lp) in
    let frac = mk s e in
    (* value = base + frac with |frac| < 2; one carry restores < 1 *)
    let base, frac =
      if le (of_float 1.0) frac then (Int64.add base 1L, sub frac (of_float 1.0))
      else if le frac (of_float (-1.0)) then
        (Int64.sub base 1L, add frac (of_float 1.0))
      else (base, frac)
    in
    Some
      (if rn then
         if le (of_float 0.5) frac then Int64.add base 1L
         else if le frac (of_float (-0.5)) then Int64.sub base 1L
         else base
       else if Int64.compare base 0L > 0 && lt frac zero then
         Int64.sub base 1L
       else if Int64.compare base 0L < 0 && lt zero frac then
         Int64.add base 1L
       else base)
  end

(* ---------- libm pass-throughs ---------- *)

(* evaluated at double precision on the rounded arguments; sqrt, fabs
   and fma are redirected to their native dd versions *)
let libm_apply (name : string) (args : t array) : t =
  match name with
  | "sqrt" -> sqrt args.(0)
  | "fabs" -> abs args.(0)
  | "fma" -> fma args.(0) args.(1) args.(2)
  | "fmin" -> min2 args.(0) args.(1)
  | "fmax" -> max2 args.(0) args.(1)
  | _ -> of_float (Vex.Eval.libm_apply name (Array.map to_float args))
