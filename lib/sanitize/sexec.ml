(* The NSan-style shadow executor: runs a superblock program once,
   shadowing every F32/F64 temporary, thread-state slot and memory slot
   with a double-double ({!Twofloat}) instead of the full analysis'
   Bigfloat-plus-trace-plus-influences shadow. Checks fire at the
   observable points of Courbet's NSan: memory stores of floats,
   float-to-integer casts, float comparisons that flip against the
   shadow, and program outputs.

   Client semantics are shared with the other engines through
   [Vex.Eval]; the stepping loop is [Vex.Machine.drive], the pre-decoded
   superblock stream is [Vex.Compile] (cached process-wide), both shared
   with [Core.Exec]. Outputs are bit-identical to [Vex.Machine.run]'s
   (the fuzz transparency oracle holds the engine to that). *)

module TF = Twofloat

type check_kind = Check_store | Check_cast | Check_cmp | Check_output

let check_kind_name = function
  | Check_store -> "store"
  | Check_cast -> "cast"
  | Check_cmp -> "branch"
  | Check_output -> "output"

type finding = {
  f_id : int;  (* statement id (pc) *)
  f_loc : Vex.Ir.loc;
  f_kind : check_kind;
  mutable f_total : int;  (* times the check executed *)
  mutable f_hits : int;  (* fired: error above threshold, or a flip *)
  mutable f_bits_sum : float;
  mutable f_bits_max : float;
  mutable f_uncertain : int;
      (* flips whose margin is below dd resolution: a higher-precision
         engine may legitimately disagree (the consistency oracle skips
         these) *)
  mutable f_nonfinite_hits : int;
      (* instances where the client value itself was nan or infinite:
         kept separate so the engine-consistency oracle can tell a
         verdict about an overflow/invalid from a measured-error one *)
}

exception Fatal_finding of finding
exception Client_error of string

type stats = {
  mutable blocks_run : int;
  mutable stmts_run : int;
  mutable stmts_executed : int;  (* pre-decoded statements dispatched *)
  mutable stmts_instrumented : int;
  mutable shadow_ops : int;  (* dd-shadowed floating-point operations *)
  mutable checks_run : int;
}

(* a comparison shadow: the client verdict, the dd verdict, the error in
   the compared difference, and whether the margin was below what ~106
   bits can resolve *)
type sbool = {
  client_b : bool;
  shadow_b : bool;
  cmp_bits : float;
  uncertain : bool;
}

type slot = SNone | SF of TF.t | SBool of sbool | SVec of slot array

(* A paged dense shadow table, replacing the sparse [Vex.Shadowtbl] on
   the sanitizer's hot path: a load or store of a shadowed float costs a
   few array reads instead of hashtable probes, and nothing allocates
   after the first touch of a page. Semantics mirror [Vex.Shadowtbl] —
   an entry covers [addr, addr+size) at a 4-aligned start, and any
   overlapping write kills it; unaligned addresses never hit (the probe
   grid is 4-aligned, exactly like the sparse table's key space). *)
module Stbl : sig
  type t

  val create : int -> t
  (** [create nbytes] shadows a [nbytes]-byte space, initially empty. *)

  val get : t -> int -> int -> slot
  (** the slot at exactly [addr]/[size], or [SNone] *)

  val clear_range : t -> int -> int -> unit
  val set : t -> int -> int -> slot -> unit
end = struct
  type page = { slots : slot array; sizes : Bytes.t }
  type t = { pages : page option array }

  let page_cells = 1024 (* 4 KiB of client space per page *)

  let create nbytes =
    let ncells = (nbytes + 3) lsr 2 in
    { pages = Array.make (((ncells + page_cells - 1) / page_cells) + 1) None }

  let get t addr size : slot =
    if addr land 3 <> 0 || addr < 0 then SNone
    else
      let c = addr lsr 2 in
      let p = c / page_cells in
      if p >= Array.length t.pages then SNone
      else
        match t.pages.(p) with
        | None -> SNone
        | Some pg ->
            let i = c land (page_cells - 1) in
            if Bytes.get_uint8 pg.sizes i = size then pg.slots.(i) else SNone

  let clear_range t addr size =
    let off = ref (addr - 12) in
    while !off < addr + size do
      (if !off >= 0 && !off land 3 = 0 then
         let c = !off lsr 2 in
         let p = c / page_cells in
         if p < Array.length t.pages then
           match t.pages.(p) with
           | None -> ()
           | Some pg ->
               let i = c land (page_cells - 1) in
               let esize = Bytes.get_uint8 pg.sizes i in
               if esize > 0 && !off + esize > addr && !off < addr + size
               then begin
                 Bytes.set_uint8 pg.sizes i 0;
                 pg.slots.(i) <- SNone
               end);
      off := !off + 4
    done

  let set t addr size (s : slot) =
    clear_range t addr size;
    if addr land 3 = 0 && addr >= 0 then begin
      let c = addr lsr 2 in
      let p = c / page_cells in
      if p < Array.length t.pages then begin
        let pg =
          match t.pages.(p) with
          | Some pg -> pg
          | None ->
              let pg =
                {
                  slots = Array.make page_cells SNone;
                  sizes = Bytes.make page_cells '\000';
                }
              in
              t.pages.(p) <- Some pg;
              pg
        in
        let i = c land (page_cells - 1) in
        pg.slots.(i) <- s;
        Bytes.set_uint8 pg.sizes i size
      end
    end
end

(* Per-block scratch space, allocated once at [create] and reused on
   every execution of the block (the stepping loop runs one block at a
   time, so reuse cannot race). [esh] carries the shadow slot of the
   expression [eval] just returned — an out-parameter, so the hot
   evaluator never allocates a (value, slot) pair per node. *)
type frame = {
  temps : Vex.Value.t array;
  tshadow : slot array;
  mutable esh : slot;
}

type state = {
  prog : Vex.Ir.prog;
  threshold : float;
  fatal : bool;
  compiled : Vex.Compile.t;
  mem : Bytes.t;
  (* exclusive upper bound of client memory traffic this run; the
     scratch pool re-zeroes only [0, mem_hw) on reuse *)
  mutable mem_hw : int;
  thread : Bytes.t;
  (* the tables hold whole [SF] slots, not bare dd values: a load can
     then return the stored box as-is and a store re-insert it, so the
     hot loop never re-wraps a shadow it just read *)
  mem_shadow : Stbl.t;
  thread_shadow : Stbl.t;
  findings : (int, finding) Hashtbl.t;
  (* the same findings indexed [block].(stmt): check sites hit their
     entry with two array reads instead of a hash probe *)
  findings_by_stmt : finding option array array;
  frames : frame array;  (* per-block scratch, reused across executions *)
  temp_inits : Vex.Value.t array array;  (* pristine temps per block *)
  inputs : float array;
  mutable outputs : Vex.Machine.output list;  (* reversed *)
  stats : stats;
  max_steps : int;
  (* deadline hook, called by the executor itself every [tick_stride]
     raw statements rather than by the driver per superblock *)
  tick : (unit -> unit) option;
  mutable stmts_since_tick : int;
}

(* A per-domain pool of one client-memory buffer. Zeroing a fresh 1 MiB
   [Bytes.make] per execution costs more than many sanitize runs do, so
   [run] parks its buffer here on exit and [create] re-zeroes only the
   prefix the previous run actually touched ([mem_hw], which bounds
   every load and store) — a read above the watermark still sees the
   zeros the machine semantics promise. *)
let scratch_pool : (Bytes.t * int) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let acquire_mem mem_size : Bytes.t =
  let pool = Domain.DLS.get scratch_pool in
  match !pool with
  | Some (b, hw) when Bytes.length b = mem_size ->
      pool := None;
      Bytes.fill b 0 (min hw mem_size) '\000';
      b
  | _ -> Bytes.make mem_size '\000'

let release_mem (mem : Bytes.t) (mem_hw : int) : unit =
  let pool = Domain.DLS.get scratch_pool in
  pool := Some (mem, mem_hw)

(* raw statements between wall-clock checks; shared with [Core.Exec] *)
let tick_stride = 1024

let create ?(mem_size = Vex.Machine.default_mem_size) ?(max_steps = max_int)
    ?(inputs = [||]) ?(fatal = false) ?tick (cfg : Core.Config.t) prog =
  let compiled =
    Vex.Compile.get ~type_inference:cfg.Core.Config.type_inference prog
  in
  {
    prog;
    threshold = cfg.Core.Config.error_threshold;
    fatal;
    compiled;
    mem = acquire_mem mem_size;
    mem_hw = 0;
    thread = Bytes.make Vex.Machine.default_thread_size '\000';
    mem_shadow = Stbl.create mem_size;
    thread_shadow = Stbl.create Vex.Machine.default_thread_size;
    findings = Hashtbl.create 64;
    findings_by_stmt =
      Array.map
        (fun (b : Vex.Ir.block) ->
          Array.make (Array.length b.Vex.Ir.stmts) None)
        prog.Vex.Ir.blocks;
    frames =
      Array.map
        (fun (b : Vex.Ir.block) ->
          let n = Array.length b.Vex.Ir.temp_tys in
          {
            temps = Array.map Vex.Machine.init_value b.Vex.Ir.temp_tys;
            tshadow = Array.make n SNone;
            esh = SNone;
          })
        prog.Vex.Ir.blocks;
    temp_inits =
      Array.map
        (fun (b : Vex.Ir.block) ->
          Array.map Vex.Machine.init_value b.Vex.Ir.temp_tys)
        prog.Vex.Ir.blocks;
    inputs;
    outputs = [];
    stats =
      {
        blocks_run = 0;
        stmts_run = 0;
        stmts_executed = 0;
        stmts_instrumented = 0;
        shadow_ops = 0;
        checks_run = 0;
      };
    max_steps;
    tick;
    (* start at the stride so the first block entry checks the deadline
       immediately *)
    stmts_since_tick = tick_stride;
  }

(* ---------- findings ---------- *)

let finding_entry st id loc kind =
  let row = st.findings_by_stmt.(Vex.Ir.stmt_id_block id) in
  let si = Vex.Ir.stmt_id_stmt id in
  match row.(si) with
  | Some f -> f
  | None ->
      let f =
        {
          f_id = id;
          f_loc = loc;
          f_kind = kind;
          f_total = 0;
          f_hits = 0;
          f_bits_sum = 0.0;
          f_bits_max = 0.0;
          f_uncertain = 0;
          f_nonfinite_hits = 0;
        }
      in
      row.(si) <- Some f;
      Hashtbl.replace st.findings id f;
      f

(* value-error checks (stores, outputs): fire above the threshold *)
let check_value st ~stmt_id ~loc ~kind ~(bits : float) =
  st.stats.checks_run <- st.stats.checks_run + 1;
  let f = finding_entry st stmt_id loc kind in
  f.f_total <- f.f_total + 1;
  f.f_bits_sum <- f.f_bits_sum +. bits;
  if bits > f.f_bits_max then f.f_bits_max <- bits;
  if bits > st.threshold then begin
    f.f_hits <- f.f_hits + 1;
    if st.fatal then raise (Fatal_finding f)
  end

(* flip checks (casts, comparisons): fire when the verdicts disagree *)
let check_flip st ~stmt_id ~loc ~kind ~(flip : bool) ~(bits : float)
    ~(uncertain : bool) =
  st.stats.checks_run <- st.stats.checks_run + 1;
  let f = finding_entry st stmt_id loc kind in
  f.f_total <- f.f_total + 1;
  if flip then begin
    f.f_hits <- f.f_hits + 1;
    f.f_bits_sum <- f.f_bits_sum +. bits;
    if bits > f.f_bits_max then f.f_bits_max <- bits;
    if uncertain then f.f_uncertain <- f.f_uncertain + 1;
    if st.fatal then raise (Fatal_finding f)
  end

(* error of a client float against its dd shadow, on the client's grid *)
let shadow_bits ~single (client : float) (sh : TF.t) =
  let rf = TF.to_float sh in
  if single then Ieee.Single.bits_of_error client (Ieee.Single.of_double rf)
  else Ieee.bits_of_error client rf

(* ---------- shadow plumbing ---------- *)

let sf_of (v : float) (sl : slot) : TF.t =
  match sl with SF d -> d | SNone | SBool _ | SVec _ -> TF.of_float v

let check_mem st addr size =
  if addr < 0 || addr + size > Bytes.length st.mem then
    raise (Client_error (Printf.sprintf "memory access out of bounds: %d" addr))
  else if addr + size > st.mem_hw then st.mem_hw <- addr + size

(* the stored slot at exactly [off]/[size], or SNone — allocation-free *)
let tbl_slot tbl off size : slot =
  match Stbl.get tbl off size with
  | s -> s
  | exception Not_found -> SNone

let load_shadow tbl off (ty : Vex.Ir.ty) : slot =
  match ty with
  | Vex.Ir.F64 | Vex.Ir.I64 -> tbl_slot tbl off 8
  | Vex.Ir.F32 | Vex.Ir.I32 -> tbl_slot tbl off 4
  | Vex.Ir.V128 -> begin
      match (tbl_slot tbl off 8, tbl_slot tbl (off + 8) 8) with
      | SNone, SNone -> begin
          let lanes = Array.init 4 (fun i -> tbl_slot tbl (off + (4 * i)) 4) in
          if Array.exists (fun s -> s <> SNone) lanes then SVec lanes
          else SNone
        end
      | lo, hi -> SVec [| lo; hi |]
    end
  | Vex.Ir.I1 | Vex.Ir.I8 | Vex.Ir.I16 -> SNone

let store_shadow tbl off (v : Vex.Value.t) (sh : slot) =
  match (v, sh) with
  | Vex.Value.VV128 _, SVec lanes ->
      let lane_size = if Array.length lanes = 2 then 8 else 4 in
      Array.iteri
        (fun i sl ->
          match sl with
          | SF _ -> Stbl.set tbl (off + (lane_size * i)) lane_size sl
          | SNone | SBool _ | SVec _ ->
              Stbl.clear_range tbl (off + (lane_size * i)) lane_size)
        lanes
  | Vex.Value.VV128 _, _ -> Stbl.clear_range tbl off 16
  | v, (SF _ as s) ->
      let size =
        match Vex.Value.ty_of v with
        | Vex.Ir.F32 | Vex.Ir.I32 -> 4
        | _ -> 8
      in
      Stbl.set tbl off size s
  | v, _ -> Stbl.clear_range tbl off (Vex.Ir.ty_size (Vex.Value.ty_of v))

(* ---------- shadowed operations ---------- *)

let float_of_value = function
  | Vex.Value.VF64 f | Vex.Value.VF32 f -> f
  | v -> Vex.Value.type_error "expected float" v

(* margin below which a dd comparison verdict is not trustworthy against
   an arbitrarily precise engine *)
let cmp_uncertainty_rel = 0x1p-88

let do_cmp st (dd_cmp : TF.t -> TF.t -> bool) ~(client : bool)
    (a_f : float) (ash : slot) (b_f : float) (bsh : slot) : slot =
  st.stats.shadow_ops <- st.stats.shadow_ops + 1;
  let ad = sf_of a_f ash and bd = sf_of b_f bsh in
  let shadow_b = dd_cmp ad bd in
  let diff = TF.sub ad bd in
  let cmp_bits = Ieee.bits_of_error (a_f -. b_f) (TF.to_float diff) in
  let scale = Float.max (Float.abs (TF.to_float ad)) (Float.abs (TF.to_float bd)) in
  let uncertain =
    (not (TF.is_finite ad && TF.is_finite bd))
    || Float.abs (TF.to_float diff) <= scale *. cmp_uncertainty_rel
  in
  SBool { client_b = client; shadow_b; cmp_bits; uncertain }

let record_branch st ~loc ~stmt_id (sb : sbool) =
  check_flip st ~stmt_id ~loc ~kind:Check_cmp
    ~flip:(sb.client_b <> sb.shadow_b)
    ~bits:sb.cmp_bits ~uncertain:sb.uncertain

(* a float -> int cast: compare the client integer against the dd
   truncation/rounding; flag flips, with an uncertainty guard when the
   dd value sits within dd resolution of the rounding boundary *)
let do_cast st ~loc ~stmt_id ~(rn : bool) (arg_f : float) (ash : slot)
    (client_int : int64) =
  match ash with
  | SF d ->
      let shadow_int = TF.to_int64 ~rn d in
      let flip =
        match shadow_int with
        | Some i -> not (Int64.equal i client_int)
        | None -> true
      in
      let bits =
        match shadow_int with
        | Some i ->
            Ieee.bits_of_error (Int64.to_float client_int) (Int64.to_float i)
        | None -> 64.0
      in
      let uncertain =
        (not (TF.is_finite d))
        ||
        let v = TF.to_float d in
        let frac = v -. Float.trunc v in
        let boundary_dist =
          if rn then Float.abs (Float.abs frac -. 0.5)
          else Float.min (Float.abs frac) (1.0 -. Float.abs frac)
        in
        boundary_dist <= (Float.abs v *. cmp_uncertainty_rel) +. 0x1p-200
      in
      check_flip st ~stmt_id ~loc ~kind:Check_cast ~flip ~bits ~uncertain
  | SNone | SBool _ | SVec _ ->
      (* no shadow: the cast input is exact, nothing to compare *)
      ignore arg_f

let lane_slot (sl : slot) n i : slot =
  match sl with
  | SVec lanes when Array.length lanes = n -> lanes.(i)
  | _ -> SNone

let shadow_unop st ~loc ~stmt_id (op : Vex.Ir.unop) (av : Vex.Value.t)
    (ash : slot) (result : Vex.Value.t) : slot =
  match op with
  | Vex.Ir.SqrtF64 ->
      st.stats.shadow_ops <- st.stats.shadow_ops + 1;
      SF (TF.sqrt (sf_of (Vex.Value.as_f64 av) ash))
  | Vex.Ir.SqrtF32 ->
      st.stats.shadow_ops <- st.stats.shadow_ops + 1;
      SF (TF.sqrt (sf_of (Vex.Value.as_f32 av) ash))
  | Vex.Ir.NegF64 | Vex.Ir.NegF32 -> begin
      match ash with SF d -> SF (TF.neg d) | _ -> SNone
    end
  | Vex.Ir.AbsF64 | Vex.Ir.AbsF32 -> begin
      match ash with SF d -> SF (TF.abs d) | _ -> SNone
    end
  (* precision conversions: the dd shadow keeps its full width *)
  | Vex.Ir.F32toF64 | Vex.Ir.F64toF32 -> ash
  (* int -> float: exact provenance *)
  | Vex.Ir.I64toF64 | Vex.Ir.I64toF32 ->
      SF (TF.of_int64 (Vex.Value.as_i64 av))
  (* float -> int: a cast check point *)
  | Vex.Ir.F64toI64tz ->
      do_cast st ~loc ~stmt_id ~rn:false (Vex.Value.as_f64 av) ash
        (Vex.Value.as_i64 result);
      SNone
  | Vex.Ir.F64toI64rn ->
      do_cast st ~loc ~stmt_id ~rn:true (Vex.Value.as_f64 av) ash
        (Vex.Value.as_i64 result);
      SNone
  | Vex.Ir.F32toI64tz ->
      do_cast st ~loc ~stmt_id ~rn:false (Vex.Value.as_f32 av) ash
        (Vex.Value.as_i64 result);
      SNone
  (* bit reinterpretation: the shadow rides along *)
  | Vex.Ir.ReinterpF64asI64 | Vex.Ir.ReinterpI64asF64 | Vex.Ir.ReinterpF32asI32
  | Vex.Ir.ReinterpI32asF32 ->
      ash
  | Vex.Ir.V128to64 -> lane_slot ash 2 0
  | Vex.Ir.V128HIto64 -> lane_slot ash 2 1
  | Vex.Ir.Sqrt64Fx2 ->
      let a0, a1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 av) in
      let lane i a =
        st.stats.shadow_ops <- st.stats.shadow_ops + 1;
        SF (TF.sqrt (sf_of a (lane_slot ash 2 i)))
      in
      SVec [| lane 0 a0; lane 1 a1 |]
  | Vex.Ir.Not1 | Vex.Ir.Neg64 | Vex.Ir.Not64 | Vex.Ir.I32toI64s
  | Vex.Ir.I32toI64u | Vex.Ir.I64toI32 -> begin
      (* Not1 must preserve comparison shadows so negated guards track *)
      match (op, ash) with
      | Vex.Ir.Not1, SBool sb ->
          SBool { sb with client_b = not sb.client_b; shadow_b = not sb.shadow_b }
      | _ -> SNone
    end

let shadow_binop st (op : Vex.Ir.binop) (av : Vex.Value.t) (ash : slot)
    (bv : Vex.Value.t) (bsh : slot) (result : Vex.Value.t) : slot =
  let f64_op dd_fn =
    st.stats.shadow_ops <- st.stats.shadow_ops + 1;
    SF
      (dd_fn
         (sf_of (Vex.Value.as_f64 av) ash)
         (sf_of (Vex.Value.as_f64 bv) bsh))
  in
  let f32_op dd_fn =
    st.stats.shadow_ops <- st.stats.shadow_ops + 1;
    SF
      (dd_fn
         (sf_of (Vex.Value.as_f32 av) ash)
         (sf_of (Vex.Value.as_f32 bv) bsh))
  in
  let cmp_op dd_cmp =
    do_cmp st dd_cmp
      ~client:(Vex.Value.as_bool result)
      (float_of_value av) ash (float_of_value bv) bsh
  in
  match op with
  | Vex.Ir.AddF64 -> f64_op TF.add
  | Vex.Ir.SubF64 -> f64_op TF.sub
  | Vex.Ir.MulF64 -> f64_op TF.mul
  | Vex.Ir.DivF64 -> f64_op TF.div
  | Vex.Ir.MinF64 -> f64_op TF.min2
  | Vex.Ir.MaxF64 -> f64_op TF.max2
  | Vex.Ir.AddF32 -> f32_op TF.add
  | Vex.Ir.SubF32 -> f32_op TF.sub
  | Vex.Ir.MulF32 -> f32_op TF.mul
  | Vex.Ir.DivF32 -> f32_op TF.div
  | Vex.Ir.CmpEQF64 | Vex.Ir.CmpEQF32 -> cmp_op TF.eq
  | Vex.Ir.CmpNEF64 -> cmp_op (fun x y -> not (TF.eq x y))
  | Vex.Ir.CmpLTF64 | Vex.Ir.CmpLTF32 -> cmp_op TF.lt
  | Vex.Ir.CmpLEF64 | Vex.Ir.CmpLEF32 -> cmp_op TF.le
  (* gcc bit tricks: XOR with the sign mask is negation, AND with the
     abs mask is fabs *)
  | Vex.Ir.Xor64 -> begin
      match (ash, bsh, av, bv) with
      | SF d, SNone, _, Vex.Value.VI64 m
        when Int64.equal m Ieee.Bits.sign_flip_mask64 ->
          SF (TF.neg d)
      | SNone, SF d, Vex.Value.VI64 m, _
        when Int64.equal m Ieee.Bits.sign_flip_mask64 ->
          SF (TF.neg d)
      | _ -> SNone
    end
  | Vex.Ir.And64 -> begin
      match (ash, bsh, av, bv) with
      | SF d, SNone, _, Vex.Value.VI64 m
        when Int64.equal m Ieee.Bits.abs_mask64 ->
          SF (TF.abs d)
      | SNone, SF d, Vex.Value.VI64 m, _
        when Int64.equal m Ieee.Bits.abs_mask64 ->
          SF (TF.abs d)
      | _ -> SNone
    end
  (* SIMD packed float ops: one dd op per lane *)
  | Vex.Ir.Add64Fx2 | Vex.Ir.Sub64Fx2 | Vex.Ir.Mul64Fx2 | Vex.Ir.Div64Fx2 ->
      let dd_fn =
        match op with
        | Vex.Ir.Add64Fx2 -> TF.add
        | Vex.Ir.Sub64Fx2 -> TF.sub
        | Vex.Ir.Mul64Fx2 -> TF.mul
        | _ -> TF.div
      in
      let a0, a1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 av) in
      let b0, b1 = Vex.Value.v128_f64_lanes (Vex.Value.as_v128 bv) in
      let lane i x y =
        st.stats.shadow_ops <- st.stats.shadow_ops + 1;
        SF (dd_fn (sf_of x (lane_slot ash 2 i)) (sf_of y (lane_slot bsh 2 i)))
      in
      SVec [| lane 0 a0 b0; lane 1 a1 b1 |]
  | Vex.Ir.Add32Fx4 | Vex.Ir.Sub32Fx4 | Vex.Ir.Mul32Fx4 | Vex.Ir.Div32Fx4 ->
      let dd_fn =
        match op with
        | Vex.Ir.Add32Fx4 -> TF.add
        | Vex.Ir.Sub32Fx4 -> TF.sub
        | Vex.Ir.Mul32Fx4 -> TF.mul
        | _ -> TF.div
      in
      let a0, a1, a2, a3 = Vex.Value.v128_f32_lanes (Vex.Value.as_v128 av) in
      let b0, b1, b2, b3 = Vex.Value.v128_f32_lanes (Vex.Value.as_v128 bv) in
      let lane i x y =
        st.stats.shadow_ops <- st.stats.shadow_ops + 1;
        SF (dd_fn (sf_of x (lane_slot ash 4 i)) (sf_of y (lane_slot bsh 4 i)))
      in
      SVec [| lane 0 a0 b0; lane 1 a1 b1; lane 2 a2 b2; lane 3 a3 b3 |]
  | Vex.Ir.I64HLtoV128 ->
      (* Binop(hi, lo): lanes are [lo; hi] *)
      SVec [| bsh; ash |]
  | Vex.Ir.XorV128 | Vex.Ir.AndV128 | Vex.Ir.OrV128 -> SNone
  | Vex.Ir.Add64 | Vex.Ir.Sub64 | Vex.Ir.Mul64 | Vex.Ir.DivS64 | Vex.Ir.ModS64
  | Vex.Ir.Or64 | Vex.Ir.Shl64 | Vex.Ir.Shr64 | Vex.Ir.Sar64 | Vex.Ir.CmpEQ64
  | Vex.Ir.CmpNE64 | Vex.Ir.CmpLT64S | Vex.Ir.CmpLE64S ->
      SNone

(* ---------- statement and block loop ---------- *)

exception Exit_to of int

(* the client value of [e]; its shadow slot is left in [fr.esh] *)
let rec eval st fr ~loc ~stmt_id (e : Vex.Ir.expr) : Vex.Value.t =
  match e with
  | Vex.Ir.RdTmp t ->
      fr.esh <- fr.tshadow.(t);
      fr.temps.(t)
  | Vex.Ir.Const c ->
      fr.esh <- SNone;
      Vex.Value.of_const c
  | Vex.Ir.LabelAddr l ->
      fr.esh <- SNone;
      Vex.Value.VI64 (Int64.of_int (Vex.Ir.block_index st.prog l))
  | Vex.Ir.Get (off, ty) ->
      fr.esh <- load_shadow st.thread_shadow off ty;
      Vex.Value.read_bytes st.thread off ty
  | Vex.Ir.Load (ty, a) ->
      let av = eval st fr ~loc ~stmt_id a in
      let addr = Int64.to_int (Vex.Value.as_i64 av) in
      check_mem st addr (Vex.Ir.ty_size ty);
      fr.esh <- load_shadow st.mem_shadow addr ty;
      Vex.Value.read_bytes st.mem addr ty
  | Vex.Ir.Unop (op, a) ->
      let av = eval st fr ~loc ~stmt_id a in
      let ash = fr.esh in
      let v = Vex.Eval.eval_unop op av in
      fr.esh <- shadow_unop st ~loc ~stmt_id op av ash v;
      v
  | Vex.Ir.Binop (op, a, b) ->
      let av = eval st fr ~loc ~stmt_id a in
      let ash = fr.esh in
      let bv = eval st fr ~loc ~stmt_id b in
      let bsh = fr.esh in
      let v = Vex.Eval.eval_binop op av bv in
      fr.esh <- shadow_binop st op av ash bv bsh v;
      v
  | Vex.Ir.ITE (g, t, e2) ->
      let gv = eval st fr ~loc ~stmt_id g in
      let taken = Vex.Value.as_bool gv in
      (* an ITE guarded by a float comparison is a branch check point *)
      (match fr.esh with
      | SBool sb -> record_branch st ~loc ~stmt_id sb
      | SNone | SF _ | SVec _ -> ());
      if taken then eval st fr ~loc ~stmt_id t else eval st fr ~loc ~stmt_id e2

let run_block st (bidx : int) : int =
  let cb = st.compiled.Vex.Compile.cblocks.(bidx) in
  (* self-ticked deadline: check the wall clock at block granularity,
     but only once every [tick_stride] executed raw statements *)
  (match st.tick with
  | Some tick ->
      if st.stmts_since_tick >= tick_stride then begin
        tick ();
        st.stmts_since_tick <- 0
      end;
      st.stmts_since_tick <- st.stmts_since_tick + cb.Vex.Compile.cb_n_raw
  | None -> ());
  let fr = st.frames.(bidx) in
  let nt = Array.length fr.temps in
  Array.blit st.temp_inits.(bidx) 0 fr.temps 0 nt;
  Array.fill fr.tshadow 0 nt SNone;
  (* the fast path shares the uninstrumented evaluator shape with
     [Core.Exec]: statements that provably touch no floats skip shadow
     plumbing entirely *)
  let rec fast_eval (e : Vex.Ir.expr) : Vex.Value.t =
    match e with
    | Vex.Ir.RdTmp t -> fr.temps.(t)
    | Vex.Ir.Const c -> Vex.Value.of_const c
    | Vex.Ir.LabelAddr l ->
        Vex.Value.VI64 (Int64.of_int (Vex.Ir.block_index st.prog l))
    | Vex.Ir.Get (off, ty) -> Vex.Value.read_bytes st.thread off ty
    | Vex.Ir.Load (ty, a) ->
        let addr = Int64.to_int (Vex.Value.as_i64 (fast_eval a)) in
        check_mem st addr (Vex.Ir.ty_size ty);
        Vex.Value.read_bytes st.mem addr ty
    | Vex.Ir.Unop (op, a) -> Vex.Eval.eval_unop op (fast_eval a)
    | Vex.Ir.Binop (op, a, b) ->
        Vex.Eval.eval_binop op (fast_eval a) (fast_eval b)
    | Vex.Ir.ITE (g, t, e2) ->
        if Vex.Value.as_bool (fast_eval g) then fast_eval t else fast_eval e2
  in
  let stmts = cb.Vex.Compile.cb_stmts in
  let n = Array.length stmts in
  let rec go i =
    if i >= n then begin
      st.stats.stmts_run <- st.stats.stmts_run + cb.Vex.Compile.cb_tail_w;
      match cb.Vex.Compile.cb_next with
      | Vex.Compile.CGoto t -> t
      | Vex.Compile.CIndirect e -> Int64.to_int (Vex.Value.as_i64 (fast_eval e))
      | Vex.Compile.CHalt -> -1
    end
    else begin
      let c = stmts.(i) in
      st.stats.stmts_run <- st.stats.stmts_run + c.Vex.Compile.cs_run_w;
      st.stats.stmts_executed <- st.stats.stmts_executed + 1;
      (match c.Vex.Compile.cs_path with
      (* fast paths allowed by type inference *)
      | Vex.Compile.PFast -> begin
          match c.Vex.Compile.cs_op with
          | Vex.Compile.CWrTmp (t, e) -> fr.temps.(t) <- fast_eval e
          | Vex.Compile.CExit (g, target) ->
              if Vex.Value.as_bool (fast_eval g) then raise (Exit_to target)
          | Vex.Compile.CPut (off, e) ->
              let v = fast_eval e in
              Stbl.clear_range st.thread_shadow off
                (Vex.Ir.ty_size (Vex.Value.ty_of v));
              Vex.Value.write_bytes st.thread off v
          | Vex.Compile.CStore (a, v) ->
              let addr = Int64.to_int (Vex.Value.as_i64 (fast_eval a)) in
              let value = fast_eval v in
              check_mem st addr (Vex.Ir.ty_size (Vex.Value.ty_of value));
              Stbl.clear_range st.mem_shadow addr
                (Vex.Ir.ty_size (Vex.Value.ty_of value));
              Vex.Value.write_bytes st.mem addr value
          | Vex.Compile.CDirtyArg _ | Vex.Compile.CDirty _
          | Vex.Compile.COut _ ->
              assert false (* never classified fast *)
        end
      (* the sanitizer never restricts, so POff cannot appear in its
         compiled programs; fold it into the shadow path defensively *)
      | Vex.Compile.POff | Vex.Compile.PFull -> begin
          st.stats.stmts_instrumented <- st.stats.stmts_instrumented + 1;
          let loc = c.Vex.Compile.cs_loc in
          let stmt_id = c.Vex.Compile.cs_id in
          match c.Vex.Compile.cs_op with
          | Vex.Compile.CWrTmp (t, e) ->
              let v = eval st fr ~loc ~stmt_id e in
              fr.temps.(t) <- v;
              fr.tshadow.(t) <- fr.esh
          | Vex.Compile.CPut (off, e) ->
              let v = eval st fr ~loc ~stmt_id e in
              store_shadow st.thread_shadow off v fr.esh;
              Vex.Value.write_bytes st.thread off v
          | Vex.Compile.CStore (a, ve) ->
              let av = eval st fr ~loc ~stmt_id a in
              let addr = Int64.to_int (Vex.Value.as_i64 av) in
              let v = eval st fr ~loc ~stmt_id ve in
              let sh = fr.esh in
              check_mem st addr (Vex.Ir.ty_size (Vex.Value.ty_of v));
              (* NSan's store check: how far has this value drifted by
                 the time it is written back to memory? *)
              (match (v, sh) with
              | Vex.Value.VF64 f, SF d ->
                  check_value st ~stmt_id ~loc ~kind:Check_store
                    ~bits:(shadow_bits ~single:false f d)
              | Vex.Value.VF32 f, SF d ->
                  check_value st ~stmt_id ~loc ~kind:Check_store
                    ~bits:(shadow_bits ~single:true f d)
              | _ -> ());
              store_shadow st.mem_shadow addr v sh;
              Vex.Value.write_bytes st.mem addr v
          | Vex.Compile.CDirtyArg (t, args) ->
              (* a harness input: an exact dd shadow of the client value *)
              let evaluated =
                Array.map (fun a -> eval st fr ~loc ~stmt_id a) args
              in
              let k =
                if Array.length evaluated = 1 then
                  Vex.Value.as_f64 evaluated.(0)
                else 0.0
              in
              let client = Vex.Machine.nth_input st.inputs k in
              fr.temps.(t) <- Vex.Value.VF64 client;
              fr.tshadow.(t) <- SF (TF.of_float client)
          | Vex.Compile.CDirty (t, name, args) ->
              let evaluated =
                Array.map
                  (fun a ->
                    let v = eval st fr ~loc ~stmt_id a in
                    (v, fr.esh))
                  args
              in
              let fargs =
                Array.map (fun (v, _) -> Vex.Value.as_f64 v) evaluated
              in
              let client = Vex.Eval.libm_apply name fargs in
              st.stats.shadow_ops <- st.stats.shadow_ops + 1;
              let dd_args =
                Array.map
                  (fun (v, sh) -> sf_of (Vex.Value.as_f64 v) sh)
                  evaluated
              in
              fr.temps.(t) <- Vex.Value.VF64 client;
              fr.tshadow.(t) <- SF (TF.libm_apply name dd_args)
          | Vex.Compile.CExit (g, target) ->
              let gv = eval st fr ~loc ~stmt_id g in
              (match fr.esh with
              | SBool sb -> record_branch st ~loc ~stmt_id sb
              | SNone | SF _ | SVec _ -> ());
              if Vex.Value.as_bool gv then raise (Exit_to target)
          | Vex.Compile.COut (kind, e) ->
              let v = eval st fr ~loc ~stmt_id e in
              let sh = fr.esh in
              (match kind with
              | Vex.Ir.OutMark -> () (* user spot mark: not a program output *)
              | Vex.Ir.OutFloat | Vex.Ir.OutInt ->
                  st.outputs <-
                    { Vex.Machine.stmt_id; loc; kind; value = v } :: st.outputs);
              (match (v, sh) with
              | (Vex.Value.VF64 f | Vex.Value.VF32 f), sh ->
                  let single =
                    match v with Vex.Value.VF32 _ -> true | _ -> false
                  in
                  let d = sf_of f sh in
                  (* a nan output is conservatively reported at full
                     error even when the shadow is nan too, mirroring the
                     full engine's rule *)
                  let bits =
                    if Float.is_nan f then 64.0 else shadow_bits ~single f d
                  in
                  check_value st ~stmt_id ~loc ~kind:Check_output ~bits;
                  if not (Float.is_finite f) then begin
                    let fe = finding_entry st stmt_id loc Check_output in
                    fe.f_nonfinite_hits <- fe.f_nonfinite_hits + 1
                  end
              | _ -> ())
        end);
      go (i + 1)
    end
  in
  try go 0 with Exit_to target -> target

(* ---------- results ---------- *)

type result = {
  sx_findings : (int, finding) Hashtbl.t;
  sx_outputs : Vex.Machine.output list;
  sx_stats : stats;
}

let run ?mem_size ?max_steps ?inputs ?tick ?fatal (cfg : Core.Config.t)
    (prog : Vex.Ir.prog) : result =
  let st = create ?mem_size ?max_steps ?inputs ?fatal ?tick cfg prog in
  Fun.protect
    ~finally:(fun () -> release_mem st.mem st.mem_hw)
    (fun () ->
      let error msg = Client_error msg in
      st.stats.blocks_run <-
        Vex.Machine.drive ~max_steps:st.max_steps ~error st.prog
          ~run_block:(run_block st);
      {
        sx_findings = st.findings;
        sx_outputs = List.rev st.outputs;
        sx_stats = st.stats;
      })

let outputs r = r.sx_outputs

let findings r =
  Hashtbl.fold (fun _ f acc -> f :: acc) r.sx_findings []
  |> List.sort (fun a b ->
         match compare b.f_bits_max a.f_bits_max with
         | 0 -> compare a.f_id b.f_id
         | c -> c)
