(** Double-double ("twofloat") arithmetic: an unevaluated sum [hi + lo]
    of two IEEE doubles giving ~106 significand bits with no allocation
    beyond the pair, built from the classical error-free transformations
    (Knuth/Dekker two_sum, fma-based two_prod) composed as in the QD
    library's accurate variants.

    Precision caveats: non-finite values degrade to a plain double
    ([lo] forced to 0.0); subnormals degrade smoothly to double
    precision; libm pass-throughs other than sqrt/fabs/fma/fmin/fmax
    evaluate at double precision. *)

type t = private { hi : float; lo : float }

val zero : t
val of_float : float -> t
val to_float : t -> float
val is_finite : t -> bool
val is_nan : t -> bool

val two_sum : float -> float -> float * float
(** [two_sum a b = (s, err)] with [s + err = a + b] exactly. *)

val quick_two_sum : float -> float -> float * float
(** Like {!two_sum} in 3 flops; requires [|a| >= |b|] or [a = 0]. *)

val two_prod : float -> float -> float * float
(** [two_prod a b = (p, err)] with [p + err = a * b] exactly. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val sqrt : t -> t
val fma : t -> t -> t -> t
val neg : t -> t
val abs : t -> t
val add_d : t -> float -> t
val mul_d : t -> float -> t

val eq : t -> t -> bool
(** IEEE-style: false when either side is nan. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val min2 : t -> t -> t
val max2 : t -> t -> t

val of_int64 : int64 -> t
(** Exact for [|i| < 2^62]; within 1 ulp of the head beyond. *)

val to_int64 : rn:bool -> t -> int64 option
(** Convert to an integer — truncating toward zero, or ([rn]) rounding
    to nearest half-away-from-zero like [Float.round]. [None] for
    non-finite values or magnitudes at or above [2^62]. *)

val libm_apply : string -> t array -> t
(** Math-library calls on dd shadows; sqrt/fabs/fma/fmin/fmax run
    natively in dd, everything else passes through double-precision
    libm on the rounded arguments. *)
