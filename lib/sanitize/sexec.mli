(** The NSan-style shadow executor: runs a superblock program once,
    shadowing every F32/F64 temporary, thread-state slot and memory slot
    with a double-double ({!Twofloat}).

    Checks fire at the observable points of Courbet's NSan: memory
    stores of floats, float-to-integer casts, float comparisons whose
    verdict flips against the shadow (observed at branches), and
    program outputs. Client semantics, the stepping loop and the
    pre-decoded superblock stream are shared with the other engines
    ({!Vex.Eval}, {!Vex.Machine.drive}, {!Vex.Compile}); outputs are
    bit-identical to {!Vex.Machine.run}'s, which the fuzz transparency
    oracle enforces. *)

type check_kind =
  | Check_store  (** a float stored to memory had drifted *)
  | Check_cast  (** a float->int cast disagreed with the shadow *)
  | Check_cmp  (** a float comparison flipped at a branch *)
  | Check_output  (** a program output carried error *)

val check_kind_name : check_kind -> string

(** Per-program-point aggregate of one check. *)
type finding = {
  f_id : int;  (** the statement id (pc) *)
  f_loc : Vex.Ir.loc;
  f_kind : check_kind;
  mutable f_total : int;  (** times the check executed *)
  mutable f_hits : int;  (** fired: error above threshold, or a flip *)
  mutable f_bits_sum : float;
  mutable f_bits_max : float;
  mutable f_uncertain : int;
      (** flips whose margin was below dd resolution — a higher-precision
          engine may legitimately disagree, so the engine-consistency
          oracle skips them *)
  mutable f_nonfinite_hits : int;
      (** instances where the client value itself was nan or infinite:
          kept separate so the engine-consistency oracle can tell a
          verdict about an overflow/invalid from a measured-error one *)
}

exception Fatal_finding of finding
(** Raised mid-run in [~fatal:true] mode by the first firing check. *)

exception Client_error of string
(** Out-of-bounds memory access, jump outside the program, or an
    exceeded step budget — same conditions as {!Vex.Machine.Client_error}. *)

type stats = {
  mutable blocks_run : int;
  mutable stmts_run : int;  (** raw statements, IMarks included *)
  mutable stmts_executed : int;
      (** pre-decoded statements dispatched (IMarks elided at compile
          time) *)
  mutable stmts_instrumented : int;  (** statements taking the shadow path *)
  mutable shadow_ops : int;  (** dd-shadowed floating-point operations *)
  mutable checks_run : int;
}

type result = {
  sx_findings : (int, finding) Hashtbl.t;
  sx_outputs : Vex.Machine.output list;
  sx_stats : stats;
}

val run :
  ?mem_size:int ->
  ?max_steps:int ->
  ?inputs:float array ->
  ?tick:(unit -> unit) ->
  ?fatal:bool ->
  Core.Config.t ->
  Vex.Ir.prog ->
  result
(** Run the program under the sanitizer. Only [error_threshold] is read
    from the configuration (the other knobs belong to the full engine).
    [fatal] makes the first firing check raise {!Fatal_finding} instead
    of resuming; [tick] is the batch drivers' deadline hook, called by
    the executor at block granularity at most once per 1024 executed raw
    statements, as in {!Core.Exec.run}. *)

val outputs : result -> Vex.Machine.output list
(** Everything the program printed, oldest first. *)

val findings : result -> finding list
(** All findings, most bits of error first (ties by statement id). *)
