(* Rendering sanitizer findings, mapped back to MiniC source lines where
   the IMarks carried them:

     store in accum at kernel.mc:14
       12.3 bits max error, 4.1 bits average
       fired 7 of 4096 checks
*)

type t = {
  findings : Sexec.finding list;  (* the reportable subset, worst first *)
  total_checks : int;  (* checks executed over the whole run *)
  total_points : int;  (* distinct check points seen *)
  shadow_ops : int;
}

(* a finding is reportable when it fired: value checks past the
   threshold, flip checks on any flip *)
let fired (f : Sexec.finding) = f.Sexec.f_hits > 0

let build ?(report_all = false) (r : Sexec.result) : t =
  let findings =
    Sexec.findings r |> List.filter (fun f -> report_all || fired f)
  in
  {
    findings;
    total_checks = r.Sexec.sx_stats.Sexec.checks_run;
    total_points = Hashtbl.length r.Sexec.sx_findings;
    shadow_ops = r.Sexec.sx_stats.Sexec.shadow_ops;
  }

let finding_to_string (f : Sexec.finding) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s in %s\n"
       (Sexec.check_kind_name f.Sexec.f_kind)
       (Vex.Ir.loc_to_string f.Sexec.f_loc));
  (match f.Sexec.f_kind with
  | Sexec.Check_store | Sexec.Check_output ->
      Buffer.add_string buf
        (Printf.sprintf "  %.1f bits max error, %.1f bits average\n"
           f.Sexec.f_bits_max
           (f.Sexec.f_bits_sum /. float_of_int (max 1 f.Sexec.f_total)))
  | Sexec.Check_cast | Sexec.Check_cmp ->
      Buffer.add_string buf
        (Printf.sprintf "  %d flip%s (worst %.1f bits in the operands)\n"
           f.Sexec.f_hits
           (if f.Sexec.f_hits = 1 then "" else "s")
           f.Sexec.f_bits_max));
  Buffer.add_string buf
    (Printf.sprintf "  fired %d of %d checks\n" f.Sexec.f_hits f.Sexec.f_total);
  Buffer.contents buf

let to_string (t : t) : string =
  if t.findings = [] then "Sanitizer: no floating-point problems found.\n"
  else String.concat "\n" (List.map finding_to_string t.findings)

let summary (t : t) : string =
  Printf.sprintf "%d finding%s from %d checks at %d points (%d shadow ops)"
    (List.length t.findings)
    (if List.length t.findings = 1 then "" else "s")
    t.total_checks t.total_points t.shadow_ops
