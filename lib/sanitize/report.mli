(** Rendering sanitizer findings, mapped back to MiniC source lines
    (carried by the IMarks the compiler emitted). *)

type t = {
  findings : Sexec.finding list;  (** the reportable subset, worst first *)
  total_checks : int;  (** checks executed over the whole run *)
  total_points : int;  (** distinct check points seen *)
  shadow_ops : int;
}

val fired : Sexec.finding -> bool
(** Did this finding fire at least once (error above threshold for
    store/output checks, any flip for cast/branch checks)? *)

val build : ?report_all:bool -> Sexec.result -> t
(** Keep the findings that fired; [report_all] keeps every check point
    (the analogue of [Config.report_all_spots]). *)

val finding_to_string : Sexec.finding -> string
val to_string : t -> string

val summary : t -> string
(** One line: finding count, checks run, check points, shadow ops. *)
