(** The tiered-precision engine: sanitizer triage + selective
    full-precision escalation.

    Pass 1 runs the double-double sanitizer over the whole program; if
    checks fired, pass 2 re-runs it under the full Bigfloat engine
    restricted to the backward slice of the flagged spots
    ({!Vex.Slice}), so the expensive shadow-real machinery only touches
    statements that can flow into a reported spot.

    Consistency contract (one-directional): every spot the tiered
    engine reports is bit-identical to the full engine's record for
    that spot. Spots below the dd shadow's resolution may be missed —
    that is the triage trade. The fuzz tiered-consistency oracle and
    [test/test_tiered.ml] enforce the contract. *)

type result = {
  t_san : Sanitize.Sexec.result;  (** pass 1, always present *)
  t_full : Core.Analysis.result option;
      (** pass 2, restricted to the escalated slice; [None] when pass 1
          flagged nothing *)
  t_seeds : int list;  (** flagged statement ids that seeded the slice *)
  t_slice_stmts : int;  (** statements in the escalated slice (0 if none) *)
  t_cfg : Core.Config.t;
}

val plan : Sanitize.Sexec.result -> int list
(** The escalation planner: statement ids of pass-1 findings that
    qualify as slice seeds — fired (or uncertain, or nonfinite-output)
    comparison/cast/output checks. Store checks never seed: they have no
    full-engine spot counterpart. Sorted ascending. *)

val analyze :
  ?mem_size:int ->
  ?max_steps:int ->
  ?inputs:float array ->
  ?tick:(unit -> unit) ->
  ?cfg:Core.Config.t ->
  Vex.Ir.prog ->
  result
(** Run both passes. [cfg] defaults to {!Core.Config.default} with the
    engine set to [Tiered]; the sanitizer pass reads [error_threshold],
    the escalation pass every other knob. *)

val escalated : result -> bool
(** Whether pass 2 ran. *)

val report_string : result -> string
(** Pass 2's root-cause report, or the engine's clean-program line when
    nothing escalated. *)

val outputs : result -> Vex.Machine.output list
(** The client program's outputs (from pass 2 when it ran, else pass 1);
    bit-identical to {!Vex.Machine.run}'s either way. *)
