(* The tiered-precision engine: sanitizer triage, then selective
   full-precision escalation.

   Pass 1 runs the program under the NSan-style double-double sanitizer
   ([Sanitize.Sexec]) — cheap, hardware arithmetic. If nothing fires,
   that is the verdict: no escalation, no Bigfloat work at all. If
   checks fired, the escalation planner turns the flagged observation
   points into slice seeds, [Vex.Slice] closes them under backward data
   dependencies, and pass 2 re-runs the program under the full
   Herbgrind-style engine ([Core.Analysis]) restricted to that slice:
   on-slice statements get the complete treatment (shadow reals, traces,
   influences), everything else runs machine-only.

   The consistency contract is one-directional: every spot the tiered
   engine reports is bit-identical to the full engine's record for that
   spot (the slice closure means on-slice shadows never see a machine
   re-seed the full engine wouldn't). Spots the sanitizer's ~106-bit
   shadow cannot see — error or flip margins below dd resolution — may
   be missing entirely; that is the triage bargain. *)

type result = {
  t_san : Sanitize.Sexec.result;  (* pass 1, always present *)
  t_full : Core.Analysis.result option;  (* pass 2; [None] = no escalation *)
  t_seeds : int list;  (* flagged stmt ids that seeded the slice *)
  t_slice_stmts : int;  (* statements in the escalated slice *)
  t_cfg : Core.Config.t;
}

(* The escalation planner: which pass-1 findings become slice seeds.
   Only spot-kind checks qualify — comparisons, casts and outputs are
   the observation points the full engine reports on. Store checks are
   NSan's extra early-warning surface with no full-engine counterpart;
   seeding on them would drag entire value chains into the slice for
   spots the report cannot mention. Uncertain flips count (the full
   engine may resolve them into real incorrect instances), and so do
   nonfinite output instances (the full engine reports nan outputs at
   full error regardless of measured bits). *)
let plan (san : Sanitize.Sexec.result) : int list =
  Hashtbl.fold
    (fun id (f : Sanitize.Sexec.finding) acc ->
      match f.Sanitize.Sexec.f_kind with
      | Sanitize.Sexec.Check_store -> acc
      | Sanitize.Sexec.Check_cmp | Sanitize.Sexec.Check_cast
      | Sanitize.Sexec.Check_output ->
          if
            f.Sanitize.Sexec.f_hits > 0
            || f.Sanitize.Sexec.f_uncertain > 0
            || f.Sanitize.Sexec.f_nonfinite_hits > 0
          then id :: acc
          else acc)
    san.Sanitize.Sexec.sx_findings []
  |> List.sort compare

let escalated (r : result) : bool = r.t_full <> None

let analyze ?mem_size ?max_steps ?inputs ?tick
    ?(cfg = { Core.Config.default with Core.Config.engine = Core.Config.Tiered })
    (prog : Vex.Ir.prog) : result =
  let san = Sanitize.Sexec.run ?mem_size ?max_steps ?inputs ?tick cfg prog in
  let seeds = plan san in
  match seeds with
  | [] -> { t_san = san; t_full = None; t_seeds = []; t_slice_stmts = 0; t_cfg = cfg }
  | _ ->
      let slice = Vex.Slice.compute prog ~seeds in
      let full =
        Core.Analysis.analyze ~cfg ?mem_size ?max_steps ?inputs
          ~restrict:(Vex.Slice.contains slice) ?tick prog
      in
      {
        t_san = san;
        t_full = Some full;
        t_seeds = seeds;
        t_slice_stmts = Vex.Slice.size slice;
        t_cfg = cfg;
      }

(* Report passthrough: pass 2's report when escalated; otherwise the
   full engine's clean-program rendering, so a clean program reads the
   same under either engine. *)
let report_string (r : result) : string =
  match r.t_full with
  | Some full -> Core.Analysis.report_string full
  | None -> "No floating-point problems found.\n"

let outputs (r : result) : Vex.Machine.output list =
  match r.t_full with
  | Some full -> full.Core.Analysis.raw.Core.Exec.r_outputs
  | None -> Sanitize.Sexec.outputs r.t_san
